"""Mutable, chunked columnar store with snapshot versioning.

The static :class:`~repro.data.table.Table` is frozen at construction, which
is fine for a one-shot reproduction but rules out the paper's operational
story: a deployed estimator absorbing *data* changes through incremental
training instead of full retrains.  This module adds the append lifecycle:

* :class:`ColumnStore` — per-column dictionaries plus a list of immutable
  integer-code *chunks*; ``append`` ingests batches of raw values, growing
  dictionaries as needed while keeping codes sorted by value order;
* :class:`Snapshot` — an immutable :class:`Table` view of the store at one
  point in time, carrying a monotonically increasing ``data_version``.  Every
  existing consumer (trainer, executor, codec, serving) takes a ``Table``, so
  snapshots drop into all of them unchanged;
* :class:`TableDelta` — what changed between two snapshots: the appended rows
  as their own table (full current domains, appended tuples only), plus which
  column domains grew.  Delta labeling, incremental fine-tuning, and staleness
  reporting are all driven by deltas.

Dictionary growth and snapshot immutability interact: codes index *sorted*
distinct values, so a new value landing in the middle of a domain shifts every
code above it.  The store handles this with **copy-on-remap**: existing chunks
are never mutated — a growth append builds remapped copies for the store's
current state while older snapshots keep referencing the original arrays
(which stay consistent with the dictionaries those snapshots hold).  Appends
whose values are all already in the domain take the *domain-preserving fast
path*: no remap, no copies, chunks are shared structurally with previous
snapshots.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .column import Column
from .table import Table

__all__ = ["DomainGrowthError", "Snapshot", "TableDelta", "ColumnStore"]


class DomainGrowthError(RuntimeError):
    """A column's value domain grew in a way the consumer cannot absorb.

    Raised by consumers whose shape is baked to a snapshot's domains — the
    model's output bins and predicate encodings are sized to each column's
    NDV, so a grown domain needs a cold retrain, not a rebind/fine-tune.
    """

    def __init__(self, message: str, columns: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.columns = tuple(columns)


class Snapshot(Table):
    """An immutable, versioned view of a :class:`ColumnStore`.

    A snapshot *is* a table — same columns, codes, and API — plus:

    * ``data_version`` — the store version it captures (monotonic), and
    * ``store`` — the store it came from, so downstream layers (serving)
      can compute staleness and deltas without extra plumbing.
    """

    def __init__(self, name: str, columns: Sequence[Column], data_version: int,
                 store: "ColumnStore | None" = None) -> None:
        super().__init__(name, columns)
        self.data_version = int(data_version)
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Snapshot(name={self.name!r}, version={self.data_version}, "
                f"rows={self.num_rows}, columns={self.num_columns})")


@dataclass(frozen=True)
class TableDelta:
    """The difference between two snapshots of one store (append-only).

    Attributes
    ----------
    base_version / new_version:
        The two ``data_version`` endpoints (``base_version`` may be 0, the
        empty store).
    base_rows:
        Row count at ``base_version``; appended rows occupy positions
        ``[base_rows, base_rows + appended.num_rows)`` in the new snapshot.
    appended:
        The appended tuples as their own :class:`Table`, dictionary-encoded
        against the **new** snapshot's (full) domains — exactly what the
        chunk-vectorised labeling kernel and Algorithm 1 sampling consume.
    grown_columns:
        Names of columns whose domain grew between the two versions.
    promoted_columns:
        Names of columns whose dictionary *dtype kind* changed (e.g. a
        numeric column promoted to strings by a later append).  Promotion
        changes predicate comparison semantics, so delta labeling refuses
        to reuse base counts across it.
    """

    base_version: int
    new_version: int
    base_rows: int
    appended: Table
    grown_columns: tuple[str, ...] = ()
    promoted_columns: tuple[str, ...] = ()

    @property
    def appended_rows(self) -> int:
        return self.appended.num_rows

    @property
    def domains_grew(self) -> bool:
        return bool(self.grown_columns)


@dataclass
class _ColumnState:
    """One column inside the store: current dictionary + immutable chunks."""

    name: str
    distinct_values: np.ndarray          # sorted, append-only growth
    chunks: list[np.ndarray]             # int64 code arrays, never mutated


@dataclass(frozen=True)
class _VersionInfo:
    """What the store remembers about each published version."""

    num_rows: int
    num_chunks: int
    ndv: tuple[int, ...]
    dtype_kinds: tuple[str, ...]


class ColumnStore:
    """A mutable, chunked, dictionary-encoded columnar store.

    Thread-safe for concurrent ``append``/``snapshot``/``delta`` calls (one
    writer lock); snapshots handed out are immutable and never change under
    the caller, whatever the store does afterwards.
    """

    def __init__(self, name: str, column_names: Sequence[str]) -> None:
        if not column_names:
            raise ValueError("a column store needs at least one column")
        names = list(column_names)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in store {name!r}")
        self.name = name
        self._columns = [
            _ColumnState(name=column_name,
                         distinct_values=np.empty(0, dtype=np.int64),
                         chunks=[])
            for column_name in names
        ]
        self._num_rows = 0
        self._data_version = 0
        self._lock = threading.RLock()
        # Version 0 is always the empty store, so deltas/staleness against an
        # unknown base degrade to "everything is new" instead of failing.
        self._versions: dict[int, _VersionInfo] = {
            0: _VersionInfo(num_rows=0, num_chunks=0,
                            ndv=tuple(0 for _ in names),
                            dtype_kinds=tuple("i" for _ in names)),
        }
        self._snapshot_cache: dict[int, Snapshot] = {}
        # Every snapshot ever handed out, tracked weakly: entries disappear
        # as callers drop their snapshots, which is what makes a version
        # "unreachable" for trim_versions().
        self._live_snapshots: "weakref.WeakValueDictionary[int, Snapshot]" = (
            weakref.WeakValueDictionary())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: Table, name: str | None = None) -> "ColumnStore":
        """Seed a store with an existing table's tuples (version 1)."""
        store = cls(name or table.name, table.column_names)
        with store._lock:
            for state, column in zip(store._columns, table.columns):
                state.distinct_values = np.asarray(column.distinct_values)
                state.chunks.append(np.asarray(column.codes, dtype=np.int64))
            store._num_rows = table.num_rows
            store._publish()
        return store

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Iterable]) -> "ColumnStore":
        """Seed a store from raw values (version 1)."""
        store = cls(name, list(data))
        store.append(data)
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        return [state.name for state in self._columns]

    @property
    def num_rows(self) -> int:
        with self._lock:
            return self._num_rows

    @property
    def data_version(self) -> int:
        with self._lock:
            return self._data_version

    @property
    def tracked_versions(self) -> list[int]:
        """Versions whose per-version metadata is still retained."""
        with self._lock:
            return sorted(self._versions)

    def oldest_live_version(self) -> int:
        """The oldest version some caller still holds a :class:`Snapshot` of.

        Falls back to the current version when no snapshot is live — then
        nothing older than "now" can ever be asked for again.
        """
        with self._lock:
            live = [version for version in self._live_snapshots]
            return min(live, default=self._data_version)

    def trim_versions(self, before: int | None = None) -> int:
        """Drop per-version metadata for unreachable old versions.

        Every append publishes a :class:`_VersionInfo` so staleness and
        deltas can be answered against any historical base — which grows
        forever on a long-lived store.  Versions below the oldest *live*
        snapshot and below ``before`` are dropped.  Liveness only tracks
        :class:`Snapshot` objects: a caller that remembers a version as a
        plain int (e.g. a service whose model came from a registry) must
        pass it as ``before`` to keep it answerable.  Version 0 (the empty
        store) and the current version always survive; asking about a
        trimmed version later degrades to the documented unknown-base
        behaviour (everything counts as appended) instead of failing.

        Returns the number of versions trimmed.
        """
        with self._lock:
            limit = min(v for v in (
                self.oldest_live_version(),
                self._data_version,
                before if before is not None else self._data_version,
            ))
            stale = [version for version in self._versions
                     if 0 < version < limit]
            for version in stale:
                del self._versions[version]
                self._snapshot_cache.pop(version, None)
            return len(stale)

    def rows_since(self, base_version: int) -> int:
        """Rows appended after ``base_version`` (staleness of that version).

        Unknown (pre-trim or foreign) versions count from the empty store:
        every current row is considered new.
        """
        with self._lock:
            base = self._versions.get(int(base_version))
            base_rows = base.num_rows if base is not None else 0
            return self._num_rows - base_rows

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, data: Mapping[str, Iterable]) -> Snapshot:
        """Append one batch of raw rows; returns the new snapshot.

        ``data`` maps every column name to an equal-length sequence of raw
        values.  Values already covered by the current dictionaries take the
        domain-preserving fast path (no remap); new values grow the
        dictionaries with a stable code remap applied copy-on-write, so
        previously handed-out snapshots are unaffected.  Appending zero rows
        returns the current snapshot without bumping the version.
        """
        arrays = self._validate_batch(data)
        if arrays[0].size == 0:
            return self.snapshot()
        with self._lock:
            for state, values in zip(self._columns, arrays):
                self._append_column(state, values)
            self._num_rows += int(arrays[0].size)
            self._publish()
            return self.snapshot()

    def _validate_batch(self, data: Mapping[str, Iterable]) -> list[np.ndarray]:
        expected = self.column_names
        missing = [name for name in expected if name not in data]
        unknown = [name for name in data if name not in expected]
        if missing or unknown:
            raise KeyError(
                f"append to store {self.name!r} must cover exactly its columns; "
                f"missing {missing}, unknown {unknown}")
        arrays = []
        for name in expected:
            values = data[name]
            array = (values if isinstance(values, np.ndarray)
                     else np.asarray(list(values)))
            if array.ndim != 1:
                raise ValueError(f"column {name!r}: appended values must be 1-D")
            arrays.append(array)
        lengths = {array.size for array in arrays}
        if len(lengths) != 1:
            raise ValueError(f"appended columns have differing lengths: {lengths}")
        return arrays

    def _append_column(self, state: _ColumnState, values: np.ndarray) -> None:
        """Encode ``values`` against (a possibly grown) dictionary."""
        dictionary = state.distinct_values
        if dictionary.size and values.size:
            values = self._unify_dtype(state, values)
            dictionary = state.distinct_values  # may have been promoted
        if dictionary.size:
            positions = np.searchsorted(dictionary, values)
            clipped = np.minimum(positions, dictionary.size - 1)
            in_domain = dictionary[clipped] == values
            if in_domain.all():
                # Domain-preserving fast path: no dictionary change, no remap.
                state.chunks.append(clipped.astype(np.int64))
                return
            new_distinct = np.unique(values[~in_domain])
            merged = np.union1d(dictionary, new_distinct)
        else:
            merged = np.unique(values)
        if dictionary.size:
            # Stable remap old codes -> new codes; union1d keeps every old
            # value, so this lookup is exact.  Chunks are replaced by fresh
            # remapped arrays (copy-on-remap): snapshots holding the old
            # arrays stay consistent with the old dictionary.
            remap = np.searchsorted(merged, dictionary)
            state.chunks = [remap[chunk] for chunk in state.chunks]
        state.distinct_values = merged
        state.chunks.append(np.searchsorted(merged, values).astype(np.int64))

    def _unify_dtype(self, state: _ColumnState, values: np.ndarray) -> np.ndarray:
        """Promote the column dictionary and/or the batch to a common dtype.

        Numeric kinds promote through NumPy's rules; mixing numeric and
        string kinds promotes everything to strings (with a full re-sort and
        remap, since lexicographic order differs from numeric order).
        """
        old = state.distinct_values.dtype
        new = values.dtype
        if old.kind == new.kind:
            return values
        numeric = ("i", "u", "f", "b")
        if old.kind in numeric and new.kind in numeric:
            return values  # searchsorted/union1d promote numerics natively
        # Mixed kinds: fall back to the string representation of both sides.
        as_text = state.distinct_values.astype(str)
        order = np.argsort(as_text, kind="stable")
        if not np.array_equal(order, np.arange(order.size)):
            # Re-sorting the dictionary changes code order: remap all chunks.
            remap = np.empty(order.size, dtype=np.int64)
            remap[order] = np.arange(order.size)
            state.chunks = [remap[chunk] for chunk in state.chunks]
        state.distinct_values = as_text[order]
        return values.astype(str)

    def _publish(self) -> None:
        """Record the new version's bookkeeping (caller holds the lock)."""
        self._data_version += 1
        self._versions[self._data_version] = _VersionInfo(
            num_rows=self._num_rows,
            num_chunks=len(self._columns[0].chunks),
            ndv=tuple(state.distinct_values.size for state in self._columns),
            dtype_kinds=tuple(state.distinct_values.dtype.kind
                              for state in self._columns),
        )
        self._snapshot_cache.clear()

    # ------------------------------------------------------------------
    # Snapshots and deltas
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """The current state as an immutable, versioned :class:`Table`."""
        with self._lock:
            version = self._data_version
            cached = self._snapshot_cache.get(version)
            if cached is not None:
                return cached
            columns = [
                Column(name=state.name,
                       distinct_values=state.distinct_values,
                       codes=self._materialise(state.chunks))
                for state in self._columns
            ]
            snapshot = Snapshot(self.name, columns, version, store=self)
            self._snapshot_cache[version] = snapshot
            self._live_snapshots[version] = snapshot
            return snapshot

    @staticmethod
    def _materialise(chunks: list[np.ndarray]) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=np.int64)
        if len(chunks) == 1:
            return chunks[0]  # chunks are immutable; sharing is safe
        return np.concatenate(chunks)

    def delta(self, base_version: int | Snapshot) -> TableDelta:
        """What changed between ``base_version`` and the current version.

        The appended rows come back encoded against the **current** domains,
        so the delta table drops straight into the labeling kernel and the
        virtual-table sampler.  An unknown base version degrades to the
        empty store (everything is an append).
        """
        if isinstance(base_version, Snapshot):
            base_version = base_version.data_version
        base_version = int(base_version)
        with self._lock:
            base = self._versions.get(base_version)
            if base is None:
                base, base_version = self._versions[0], 0
            appended_columns = []
            grown: list[str] = []
            promoted: list[str] = []
            for index, state in enumerate(self._columns):
                # Chunk boundaries align with appends (and remaps preserve
                # the partitioning), so the appended rows are exactly the
                # chunks past the base version's count — no base-row copy.
                codes = self._materialise(state.chunks[base.num_chunks:])
                appended_columns.append(Column(name=state.name,
                                               distinct_values=state.distinct_values,
                                               codes=codes))
                if state.distinct_values.size != base.ndv[index]:
                    grown.append(state.name)
                # Promotion only matters when the base actually had rows:
                # counts over an empty base are trivially reusable whatever
                # the dtype became (and version 0's recorded kinds are just
                # the empty-store placeholders).
                if (base.num_rows
                        and state.distinct_values.dtype.kind != base.dtype_kinds[index]):
                    promoted.append(state.name)
            appended = Table(f"{self.name}_delta", appended_columns)
            return TableDelta(base_version=base_version,
                              new_version=self._data_version,
                              base_rows=base.num_rows,
                              appended=appended,
                              grown_columns=tuple(grown),
                              promoted_columns=tuple(promoted))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnStore(name={self.name!r}, version={self.data_version}, "
                f"rows={self.num_rows}, columns={len(self._columns)})")
