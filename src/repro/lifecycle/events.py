"""Structured event log of the lifecycle controller.

Every decision the control plane takes — evaluate, refresh, cold-train
escalation, retention sweep, failure — is recorded as one immutable
:class:`LifecycleEvent` in a bounded, thread-safe :class:`EventLog`.  The
log is the controller's observable surface: tests assert on it, the soak
report aggregates it, and an operator reads it instead of grepping stdout.

Per-kind lifetime totals are backed by a
:class:`~repro.obs.MetricsRegistry` counter
(``repro_lifecycle_events_total{kind=...}``), so the controller's activity
shows up in the same exposition as the serving metrics; events the bounded
window silently discarded are themselves counted
(``repro_lifecycle_events_dropped_total``) — overflow is visible instead of
silent.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from ..obs import MetricsRegistry

__all__ = ["LifecycleEvent", "EventLog"]

#: event kinds the controller emits (kept as plain strings so the log can
#: carry future kinds without a schema change; this tuple is the vocabulary
#: tests and dashboards can rely on)
EVENT_KINDS = (
    "decision",      # one policy evaluation (fired or not)
    "refresh",       # incremental fine-tune + hot-swap completed
    "cold_train",    # domain growth/compaction escalated to a retrain + swap
    "compaction",    # tombstoned rows physically dropped from the store
    "retention",     # registry prune and/or store version trim
    "error",         # a tune failed for a non-escalatable reason
    "canary_pass",   # shadow evaluation admitted a candidate model
    "canary_reject", # shadow evaluation turned a candidate away
    "breaker",       # circuit breaker transition (open / half_open / closed)
)


@dataclass(frozen=True)
class LifecycleEvent:
    """One thing the controller did (or decided not to do)."""

    kind: str
    timestamp: float
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        payload = " ".join(f"{key}={value}" for key, value in self.details.items())
        return f"[{self.kind}] {payload}" if payload else f"[{self.kind}]"


class EventLog:
    """Bounded, thread-safe append-only log of :class:`LifecycleEvent`.

    ``capacity`` bounds memory on a long-running controller: the oldest
    events fall off, but per-kind *counters* are kept forever so totals
    (how many refreshes ever ran) survive the window.  Each fall-off
    increments :attr:`dropped_events` — a reader that sees it non-zero
    knows ``events()`` is a suffix of history, not all of it.
    """

    def __init__(self, capacity: int = 1024,
                 metrics: MetricsRegistry | None = None) -> None:
        if capacity <= 0:
            raise ValueError("event log capacity must be positive")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._events: deque[LifecycleEvent] = deque(maxlen=capacity)
        self._counter = self.metrics.counter(
            "repro_lifecycle_events_total",
            "Lifecycle controller events ever recorded, by kind.",
            labels=("kind",))
        self._dropped = self.metrics.counter(
            "repro_lifecycle_events_dropped_total",
            "Events discarded by the bounded log window (overflow).").labels()

    # ------------------------------------------------------------------
    def record(self, kind: str, **details) -> LifecycleEvent:
        """Append one event; returns it (handy for chaining into returns)."""
        event = LifecycleEvent(kind=kind, timestamp=time.time(), details=details)
        with self._lock:
            if len(self._events) == self._events.maxlen:
                # The append below evicts the oldest retained event.
                self._dropped.inc()
            self._events.append(event)
            self._counter.inc(kind=kind)
        return event

    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> list[LifecycleEvent]:
        """The retained events, oldest first, optionally filtered by kind."""
        with self._lock:
            retained: Iterable[LifecycleEvent] = tuple(self._events)
        if kind is None:
            return list(retained)
        return [event for event in retained if event.kind == kind]

    def last(self, kind: str | None = None) -> LifecycleEvent | None:
        """The most recent (matching) event, or ``None``."""
        with self._lock:
            retained = tuple(self._events)
        for event in reversed(retained):
            if kind is None or event.kind == kind:
                return event
        return None

    def count(self, kind: str) -> int:
        """Total events of ``kind`` ever recorded (not just retained)."""
        return int(self._counter.value(kind=kind))

    def counts(self) -> dict[str, int]:
        return {labels["kind"]: int(value)
                for labels, value in self._counter.items() if value}

    @property
    def dropped_events(self) -> int:
        """Events the bounded window has discarded so far."""
        return int(self._dropped.value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
