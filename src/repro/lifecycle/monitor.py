"""Drift monitoring: turn the served query stream into refresh decisions.

The :class:`DriftMonitor` taps an :class:`~repro.serving.EstimationService`
through the observer hook and samples served queries into a sliding-window
*probe set*.  When asked for a decision it measures two independent things:

* **staleness** — rows churned (appended *and* deleted) in the live store
  since the served model's ``data_version``, absolute and as a fraction of
  the rows the model was trained on;
* **observed accuracy** — the probe queries' median Q-Error against fresh
  ground truth.  Truth is maintained *incrementally*: the monitor keeps the
  probe counts labeled at some store version and rolls them forward with
  :func:`~repro.workload.true_cardinalities_delta`, scanning only the rows
  churned since (appended counts added, tombstoned counts subtracted) — the
  same trick that makes fine-tuning cheap makes monitoring cheap.

Both signals are folded into a typed :class:`RefreshDecision` according to a
:class:`~repro.core.LifecyclePolicy`; the scheduler acts on it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.config import LifecyclePolicy
from ..eval.metrics import qerror
from ..workload.executor import true_cardinalities, true_cardinalities_delta
from ..workload.query import Query

__all__ = ["DriftMetrics", "RefreshDecision", "DriftMonitor"]


@dataclass(frozen=True)
class DriftMetrics:
    """What the monitor measured in one evaluation."""

    data_version: int | None     #: store version the served model was trained on
    store_version: int           #: live store version at evaluation time
    stale_rows: int              #: rows churned (appended+removed) since ``data_version``
    trained_rows: int            #: live rows the served model was trained on
    stale_fraction: float        #: ``stale_rows / trained_rows``
    probe_size: int              #: probe queries the Q-Error was measured over
    median_qerror: float | None  #: probe median Q-Error (None: probe too small)
    baseline_qerror: float | None  #: median recorded right after the last tune


@dataclass(frozen=True)
class RefreshDecision:
    """The monitor's verdict: refresh or not, and why."""

    refresh: bool
    reasons: tuple[str, ...]
    metrics: DriftMetrics

    def __bool__(self) -> bool:
        return self.refresh

    def __str__(self) -> str:
        verdict = "refresh" if self.refresh else "hold"
        why = ",".join(self.reasons) if self.reasons else "-"
        return (f"{verdict}({why}) stale_rows={self.metrics.stale_rows} "
                f"stale_fraction={self.metrics.stale_fraction:.3f} "
                f"median_qerror={self.metrics.median_qerror}")


@dataclass
class _ProbeLabels:
    """Probe ground truth pinned to one store version."""

    version: int
    queries: tuple[Query, ...]
    counts: np.ndarray


class DriftMonitor:
    """Samples served queries and folds drift signals into decisions."""

    def __init__(self, service, policy: LifecyclePolicy | None = None,
                 seed: int = 0) -> None:
        if service.store is None:
            raise ValueError(
                "DriftMonitor needs a service with a live ColumnStore "
                "(construct the EstimationService with store=...)")
        self.service = service
        self.policy = policy or LifecyclePolicy()
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._window: deque[Query] = deque(maxlen=self.policy.probe_window)
        self._labels: _ProbeLabels | None = None
        self._baseline: float | None = None

    # ------------------------------------------------------------------
    # Query-stream tap
    # ------------------------------------------------------------------
    def attach(self) -> "DriftMonitor":
        """Start sampling the service's query stream; returns ``self``."""
        self.service.add_observer(self.observe)
        return self

    def detach(self) -> None:
        self.service.remove_observer(self.observe)

    def observe(self, query: Query) -> None:
        """Maybe record one served query into the probe window."""
        with self._lock:
            if self._rng.random() <= self.policy.probe_sample_rate:
                self._window.append(query)

    def seed_probes(self, queries) -> None:
        """Pre-fill the probe window (bypassing the sampling rate).

        Useful right after startup, before organic traffic has filled the
        window — drift can then be detected from the first poll.
        """
        with self._lock:
            self._window.extend(queries)

    @property
    def probe_queries(self) -> tuple[Query, ...]:
        with self._lock:
            return tuple(self._window)

    # ------------------------------------------------------------------
    # Incremental probe labeling
    # ------------------------------------------------------------------
    def _labeled_counts(self, probes: tuple[Query, ...]) -> np.ndarray:
        """Ground-truth counts of ``probes`` at the store's current version.

        Rolls the cached labels forward through the mutation delta when the
        probe set is unchanged (one scan of the churned rows — appended
        counts added, removed counts subtracted); any change of probe set,
        a trimmed or compacted-away base version, or a dtype promotion
        falls back to a full labeling of the current snapshot.
        """
        store = self.service.store
        cached = self._labels
        current = store.data_version
        if cached is not None and cached.queries == probes:
            if cached.version == current:
                return cached.counts
            delta = store.delta(cached.version)
            if delta.base_version == cached.version:
                try:
                    counts = true_cardinalities_delta(delta, list(probes),
                                                      cached.counts)
                    self._labels = _ProbeLabels(current, probes, counts)
                    return counts
                except ValueError:
                    pass  # dtype promotion: base counts not reusable
        counts = true_cardinalities(store.snapshot(), list(probes))
        self._labels = _ProbeLabels(current, probes, counts)
        return counts

    def probe_truth(self, probes: tuple[Query, ...] | None = None
                    ) -> tuple[tuple[Query, ...], np.ndarray]:
        """Probe queries with ground truth at the store's current version.

        Public face of the incremental labeler, for consumers other than
        ``decide()`` — the canary :class:`~repro.lifecycle.ShadowEvaluator`
        scores candidate models against exactly these labels, so candidate
        and incumbent are judged on identical truth.
        """
        if probes is None:
            probes = self.probe_queries
        return probes, self._labeled_counts(probes)

    def _probe_median(self, probes: tuple[Query, ...]) -> float | None:
        """Median probe Q-Error of the currently served plan.

        Uses the service's stats/cache-bypassing
        :meth:`~repro.serving.EstimationService.probe_batch`, so monitoring
        neither inflates request counters nor evicts organic cache entries
        — and never re-enters the observer tap feeding the probe window.
        """
        if len(probes) < self.policy.min_probe_queries:
            return None
        truth = self._labeled_counts(probes)
        estimates = self.service.probe_batch(probes)
        return float(np.median(qerror(estimates, truth)))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def evaluate(self) -> DriftMetrics:
        """Measure staleness and (when the probe set allows) accuracy."""
        store = self.service.store
        stale_rows = self.service.staleness()
        store_version = store.data_version
        # Live rows at the trained version (exact even when deletes shrank
        # the live set since); a trimmed/unknown version degrades to the
        # old approximation from the current live count.
        trained_rows = store.live_rows_at(self.service.data_version)
        if trained_rows is None:
            trained_rows = max(store.num_rows - stale_rows, 0)
        probes = self.probe_queries
        wants_qerror = (self.policy.qerror_median_threshold is not None
                        or self.policy.qerror_drift_factor is not None)
        median = self._probe_median(probes) if wants_qerror else None
        return DriftMetrics(
            data_version=self.service.data_version,
            store_version=store_version,
            stale_rows=stale_rows,
            trained_rows=trained_rows,
            stale_fraction=stale_rows / max(trained_rows, 1),
            probe_size=len(probes),
            median_qerror=median,
            baseline_qerror=self._baseline,
        )

    def decide(self) -> RefreshDecision:
        """Fold one evaluation into the typed refresh verdict."""
        policy = self.policy
        metrics = self.evaluate()
        reasons: list[str] = []
        if metrics.stale_rows > 0:
            if (policy.max_stale_rows is not None
                    and metrics.stale_rows >= policy.max_stale_rows):
                reasons.append("stale_rows")
            if (policy.max_stale_fraction is not None
                    and metrics.stale_fraction >= policy.max_stale_fraction):
                reasons.append("stale_fraction")
        if metrics.median_qerror is not None:
            if (policy.qerror_median_threshold is not None
                    and metrics.median_qerror >= policy.qerror_median_threshold):
                reasons.append("qerror_threshold")
            if (policy.qerror_drift_factor is not None
                    and metrics.baseline_qerror is not None
                    and metrics.median_qerror
                    >= policy.qerror_drift_factor * metrics.baseline_qerror):
                reasons.append("qerror_drift")
        return RefreshDecision(refresh=bool(reasons), reasons=tuple(reasons),
                               metrics=metrics)

    def rebase(self) -> float | None:
        """Record the post-tune accuracy as the new drift baseline.

        Called by the scheduler right after a successful refresh or cold
        train; the drift-factor trigger then measures decay relative to the
        freshly tuned model, not some ancient one.
        """
        probes = self.probe_queries
        self._baseline = self._probe_median(probes)
        return self._baseline

    @property
    def baseline_qerror(self) -> float | None:
        return self._baseline
