"""Autonomous lifecycle controller: the control plane over store → serving.

PR 3 made the data mutable and the model refreshable; this package makes
the loop close itself.  Five cooperating parts:

* :class:`DriftMonitor` — taps the served query stream into a sliding-window
  probe set, relabels it incrementally against the live store, and combines
  observed Q-Error drift with staleness thresholds into a typed
  :class:`RefreshDecision`;
* :class:`RefreshScheduler` — a daemon-thread policy loop with debounce,
  cooldown, and backpressure (at most one tune in flight; tuning yields to
  serving in bounded batch slices) that drives
  :meth:`~repro.serving.EstimationService.refresh`;
* cold-train escalation (:func:`cold_train_and_swap`) — when a refresh hits
  a :class:`~repro.data.DomainGrowthError`, a fresh model is trained on the
  new snapshot in the background and swapped in atomically;
* :class:`RetentionPolicy` — prunes superseded registry versions and trims
  unreachable store version metadata after every successful tune;
* :class:`CompactionPolicy` — when deletes push the store's tombstone
  fraction past the policy threshold, rewrites the chunks to drop dead rows
  and escalates to the cold-train/swap path (deltas cannot span the new
  chunk layout);
* :class:`ShadowEvaluator` — canary gate in front of every swap: candidates
  are shadow-evaluated on the drift probe set and rejected when worse than
  the incumbent by more than the policy margin;
* :class:`FaultInjector` — deterministic seeded fault plans
  (:class:`FaultSpec`) threaded through trainer/registry/store seams, so
  the whole control plane can be chaos-tested reproducibly.

The scheduler also carries the failure half of the control plane:
exponential backoff on consecutive tune failures and a circuit breaker
that parks the tune path entirely after too many, half-opening for a trial
after a cooldown.  Everything the controller does lands in a structured
:class:`EventLog`.  All knobs live in :class:`~repro.core.LifecyclePolicy`.

Quickstart::

    from repro.core import LifecyclePolicy
    from repro.lifecycle import RefreshScheduler

    policy = LifecyclePolicy(max_stale_fraction=0.2, cooldown_seconds=60)
    with RefreshScheduler(service, policy):   # service has store + registry
        serve_traffic(service)                # refreshes happen on their own
"""

from .coldtrain import ColdTrainResult, cold_train_and_swap, start_cold_train
from .compaction import CompactionPolicy, CompactionReport
from .events import EventLog, LifecycleEvent
from .faults import FaultInjector, FaultSpec, InjectedFault, SimulatedCrash
from .monitor import DriftMetrics, DriftMonitor, RefreshDecision
from .retention import RetentionPolicy, RetentionReport
from .scheduler import RefreshScheduler
from .shadow import CanaryReport, ShadowEvaluator

__all__ = [
    "LifecycleEvent",
    "EventLog",
    "DriftMetrics",
    "RefreshDecision",
    "DriftMonitor",
    "RefreshScheduler",
    "ColdTrainResult",
    "cold_train_and_swap",
    "start_cold_train",
    "RetentionPolicy",
    "RetentionReport",
    "CompactionPolicy",
    "CompactionReport",
    "CanaryReport",
    "ShadowEvaluator",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "SimulatedCrash",
]
