"""Canary-gated swaps: shadow-evaluate every candidate before it serves.

Until this module existed, every model the control plane produced — a
``refresh()`` fine-tune or an escalated cold train — was swapped in
*unevaluated*: a tune that happened to make the model worse (poisoned
batch, unlucky replay sample, a training fault that silently degraded
convergence) replaced a healthy incumbent.  The :class:`ShadowEvaluator`
closes that hole with the cheapest honest comparison available:

* the :class:`~repro.lifecycle.DriftMonitor` already maintains a probe set
  of recently served queries with ground truth rolled forward to the live
  store version — exactly the evaluation workload a canary needs, for free;
* the incumbent's probe median Q-Error is measured through the service's
  stats/cache-bypassing ``probe_batch`` (monitoring never skews serving
  metrics);
* the candidate is evaluated out-of-band on its own tape path — it owns no
  plan and serves no traffic until it passes.

A candidate whose probe median exceeds
:attr:`~repro.core.LifecyclePolicy.canary_margin` times the incumbent's is
rejected: nothing is registered, nothing swaps, the incumbent keeps
serving.  The scheduler records every verdict as a ``canary_pass`` /
``canary_reject`` event.  A probe window still too small to trust
(``min_probe_queries``) abstains — the candidate is admitted exactly as it
would have been before canary gating existed, with the abstention visible
in the event's ``reason``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import LifecyclePolicy
from ..core.estimator import DuetEstimator
from ..eval.metrics import qerror

__all__ = ["CanaryReport", "ShadowEvaluator"]


@dataclass(frozen=True)
class CanaryReport:
    """Verdict of one shadow evaluation of a candidate model."""

    passed: bool
    reason: str                      #: pass | degraded | insufficient_probes
    candidate_median: float | None   #: candidate probe median Q-Error
    incumbent_median: float | None   #: incumbent probe median Q-Error
    margin: float                    #: candidate admitted iff cand <= margin * inc
    probe_size: int                  #: probe queries the medians cover

    def __str__(self) -> str:
        verdict = "pass" if self.passed else "reject"
        return (f"canary_{verdict}({self.reason}) "
                f"candidate={self.candidate_median} "
                f"incumbent={self.incumbent_median} margin={self.margin} "
                f"probes={self.probe_size}")


class ShadowEvaluator:
    """Judges candidate models against the incumbent on the drift probe set."""

    def __init__(self, monitor, policy: LifecyclePolicy | None = None) -> None:
        self.monitor = monitor
        self.policy = policy or monitor.policy

    @property
    def enabled(self) -> bool:
        return self.policy.canary_margin is not None

    def evaluate(self, candidate_model) -> CanaryReport:
        """Shadow-run ``candidate_model`` over the probe set; judge it.

        Both sides are scored against ground truth at the *current* store
        version (the monitor's incrementally rolled-forward labels), so a
        candidate trained on fresher data gets full credit for it.  The
        candidate runs its tape path out-of-band; the incumbent runs
        whatever plan currently serves, through the cache/stats-bypassing
        probe path.
        """
        margin = self.policy.canary_margin
        if margin is None:
            raise RuntimeError("canary gating is disabled (canary_margin is "
                               "None); check .enabled before evaluating")
        probes = self.monitor.probe_queries
        if len(probes) < self.policy.min_probe_queries:
            return CanaryReport(passed=True, reason="insufficient_probes",
                                candidate_median=None, incumbent_median=None,
                                margin=margin, probe_size=len(probes))
        probes, truth = self.monitor.probe_truth(probes)
        service = self.monitor.service
        incumbent = float(np.median(qerror(service.probe_batch(probes), truth)))
        candidate_estimates = np.asarray(
            DuetEstimator(candidate_model).estimate_batch(list(probes)),
            dtype=np.float64)
        candidate = float(np.median(qerror(candidate_estimates, truth)))
        passed = candidate <= margin * incumbent
        return CanaryReport(passed=passed,
                            reason="pass" if passed else "degraded",
                            candidate_median=candidate,
                            incumbent_median=incumbent,
                            margin=margin, probe_size=len(probes))
