"""Compaction policy: reclaim tombstoned rows and restart from a clean slate.

Deletes are logical — :meth:`~repro.data.ColumnStore.delete` only flips
per-chunk tombstone bits, so a delete-heavy workload accumulates dead rows
that every snapshot materialisation and delta computation still pays for.
The :class:`CompactionPolicy` watches the store's
:attr:`~repro.data.ColumnStore.tombstone_fraction`; past the threshold the
scheduler rewrites the chunks (:meth:`~repro.data.ColumnStore.compact`)
and escalates to the existing background cold-train/swap path, because

* deltas cannot span a compaction (the chunk layout changed; a fine-tune
  against a pre-compaction base would degrade to everything-is-new), and
* negative-replay fine-tuning is an approximation that drifts under heavy
  deletes — a cold train on the compacted live view resets it exactly.

Both steps land in the :class:`~repro.lifecycle.EventLog` (``compaction``
then the usual ``cold_train`` pair) and never raise into serving.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import LifecyclePolicy

__all__ = ["CompactionReport", "CompactionPolicy"]


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction rewrote."""

    tombstone_fraction: float    #: dead fraction measured before the rewrite
    dropped_rows: int            #: physical rows reclaimed
    data_version: int            #: store version published by the rewrite

    @property
    def compacted(self) -> bool:
        return self.dropped_rows > 0


class CompactionPolicy:
    """Decides when a store's tombstone debt is worth a rewrite."""

    def __init__(self, policy: LifecyclePolicy | None = None) -> None:
        self.policy = policy or LifecyclePolicy()

    def should_compact(self, store) -> bool:
        """Whether ``store`` has crossed the policy's tombstone threshold."""
        threshold = self.policy.compact_tombstone_fraction
        if threshold is None or store is None:
            return False
        return store.tombstone_fraction >= threshold

    def compact(self, service) -> CompactionReport:
        """Rewrite the service's store now; returns what was reclaimed.

        Unconditional (the caller decides *when* via :meth:`should_compact`);
        the live view is unchanged bit-for-bit, so serving continues against
        whatever snapshot it holds.  The caller is expected to follow up
        with a cold train: the served model's delta base cannot survive the
        chunk-layout change.
        """
        store = service.store
        if store is None:
            raise RuntimeError("compaction needs a service with a live "
                               "ColumnStore")
        # Measured atomically with the rewrite: mutations racing this call
        # cannot skew the reported fraction or make dropped_rows go negative.
        snapshot, fraction, dropped = store.compact_measured()
        return CompactionReport(
            tombstone_fraction=fraction,
            dropped_rows=dropped,
            data_version=snapshot.data_version,
        )
