"""Version retention: keep the registry and the store from growing forever.

Every automatic refresh registers a model version, and every append
publishes store version metadata — both unbounded on a long-lived service.
The :class:`RetentionPolicy` runs after each successful tune and applies two
bounded windows:

* :meth:`ModelRegistry.prune` keeps the newest ``keep_model_versions``
  registry versions of the dataset, never touching the manifest's latest or
  the version the service currently serves;
* :meth:`ColumnStore.trim_versions` drops per-version store metadata no
  live :class:`~repro.data.Snapshot` can name anymore.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import LifecyclePolicy

__all__ = ["RetentionReport", "RetentionPolicy"]


@dataclass(frozen=True)
class RetentionReport:
    """What one retention sweep removed."""

    pruned_model_versions: tuple[str, ...]
    trimmed_store_versions: int

    @property
    def removed_anything(self) -> bool:
        return bool(self.pruned_model_versions) or self.trimmed_store_versions > 0


class RetentionPolicy:
    """Applies the policy's retention windows to a service's registry/store."""

    def __init__(self, policy: LifecyclePolicy | None = None) -> None:
        self.policy = policy or LifecyclePolicy()

    def apply(self, service) -> RetentionReport:
        """One sweep over the service's registry and store."""
        policy = self.policy
        pruned: tuple[str, ...] = ()
        if (policy.keep_model_versions is not None
                and service.registry is not None):
            protect = tuple(version for version in (service.model_version,)
                            if version is not None)
            pruned = tuple(service.registry.prune(
                service.dataset, keep=policy.keep_model_versions,
                protect=protect))
        trimmed = 0
        if policy.trim_store_versions and service.store is not None:
            # The served data_version is held as a plain int (a registry
            # load carries no Snapshot), which the store's weak-reference
            # liveness tracking cannot see — pin it explicitly so staleness
            # against the served version never degrades to everything-new.
            trimmed = service.store.trim_versions(before=service.data_version)
        return RetentionReport(pruned_model_versions=pruned,
                               trimmed_store_versions=trimmed)
