"""Deterministic fault injection for the lifecycle control plane.

Chaos testing with reproducibility: a :class:`FaultInjector` holds a *plan*
of :class:`FaultSpec` entries, each bound to a named **site** — a seam the
production code consults when it is about to do something that can fail in
the real world:

=====================  ========================================================
site                   fired from
=====================  ========================================================
``trainer.step``       the scheduler's throttle closure, once per optimiser
                       step of every fine-tune and cold train
``registry.save``      :meth:`ModelRegistry.save`, before any file is written
``registry.manifest``  :meth:`ModelRegistry.save`, *after* the version files
                       land but *before* the manifest commits — the classic
                       crash window a recovery pass must handle
``store.append``       :meth:`ColumnStore.append`
``store.delete``       :meth:`ColumnStore.delete`
``store.compact``      :meth:`ColumnStore.compact_measured`
=====================  ========================================================

Four fault kinds cover the failure modes the robustness tests exercise:
``raise`` (a typed :class:`InjectedFault` — a trainer bug, a poisoned
batch), ``io_error`` (an :class:`OSError` — full disk, yanked volume),
``crash`` (a :class:`SimulatedCrash` — process death mid-protocol; the
handler must *not* clean up, that is the point) and ``stall``
(``time.sleep`` — a slow disk or a GC pause).

Plans are seeded: given the same specs, seed, and call sequence, the same
faults fire at the same moments — a failing chaos run replays exactly.
Everything the injector did is countable afterwards (:meth:`counts`), so
soak reports can prove faults actually fired rather than silently
misconfigured themselves away.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = ["InjectedFault", "SimulatedCrash", "FaultSpec", "FaultInjector"]

_KINDS = ("raise", "io_error", "crash", "stall")


class InjectedFault(RuntimeError):
    """A generic injected failure (kind ``raise``)."""


class SimulatedCrash(RuntimeError):
    """Injected process death (kind ``crash``).

    Raised at the fault site exactly where a real crash would cut execution;
    code under test must not get a chance to clean up, so handlers catching
    broad ``Exception`` on purpose still propagate the torn state this
    leaves behind (that torn state is what recovery tests feed on).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where, what, how often.

    ``probability`` gates each opportunity through the injector's seeded
    RNG; ``after`` skips the first N opportunities (fault the *third* save,
    not the first); ``times`` caps total firings (``None`` = unlimited).
    """

    site: str
    kind: str = "raise"
    probability: float = 1.0
    times: int | None = 1
    after: int = 0
    stall_seconds: float = 0.05
    message: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not self.site:
            raise ValueError("site must be a non-empty string")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got "
                             f"{self.probability}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.stall_seconds < 0:
            raise ValueError(f"stall_seconds must be >= 0, got "
                             f"{self.stall_seconds}")


@dataclass
class _SpecState:
    spec: FaultSpec
    seen: int = 0    #: opportunities at this spec's site
    fired: int = 0   #: faults actually injected


class FaultInjector:
    """Executes a seeded fault plan when production seams consult it.

    Thread-safe: sites fire from the scheduler loop, cold-train threads, and
    request hammers concurrently; all plan state mutates under one lock
    (the injected exception is raised outside it).
    """

    def __init__(self, specs=(), seed: int = 0) -> None:
        self._states = [_SpecState(spec) for spec in specs]
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.injected: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, site: str, **context) -> None:
        """Give every spec bound to ``site`` one opportunity to fault.

        At most one fault fires per call (specs are consulted in plan
        order); ``context`` is carried into the raised exception's message
        for post-mortem readability.
        """
        action: FaultSpec | None = None
        with self._lock:
            for state in self._states:
                if state.spec.site != site:
                    continue
                state.seen += 1
                spec = state.spec
                if state.seen <= spec.after:
                    continue
                if spec.times is not None and state.fired >= spec.times:
                    continue
                if spec.probability < 1.0 and self._rng.random() > spec.probability:
                    continue
                state.fired += 1
                self.injected[f"{site}:{spec.kind}"] += 1
                action = spec
                break
        if action is None:
            return
        detail = action.message or f"injected {action.kind} at {site}"
        if context:
            extras = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
            detail = f"{detail} ({extras})"
        if action.kind == "stall":
            time.sleep(action.stall_seconds)
        elif action.kind == "io_error":
            raise OSError(detail)
        elif action.kind == "crash":
            raise SimulatedCrash(detail)
        else:
            raise InjectedFault(detail)

    __call__ = fire

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Faults injected so far, keyed ``"{site}:{kind}"``."""
        with self._lock:
            return dict(self.injected)

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    # ------------------------------------------------------------------
    # Wiring into the control plane
    # ------------------------------------------------------------------
    def arm(self, *, scheduler=None, registry=None, store=None
            ) -> "FaultInjector":
        """Install this injector on the given components' fault seams."""
        if scheduler is not None:
            scheduler.fault_injector = self
        if registry is not None:
            registry.fault_hook = self
        if store is not None:
            store.fault_hook = self
        return self

    @staticmethod
    def disarm(*, scheduler=None, registry=None, store=None) -> None:
        """Remove any injector from the given components' fault seams."""
        if scheduler is not None:
            scheduler.fault_injector = None
        if registry is not None:
            registry.fault_hook = None
        if store is not None:
            store.fault_hook = None
