"""Cold-train escalation: when fine-tuning cannot absorb a change, retrain.

An append that grows a column's domain changes the model's encoding and
output shapes, so :meth:`EstimationService.refresh` raises a typed
:class:`~repro.data.DomainGrowthError` instead of fine-tuning.  Before the
lifecycle controller existed that error stopped the story; this module makes
domain growth degrade to *eventual freshness*: a brand-new
:class:`~repro.core.DuetModel` is trained on the offending snapshot (same
architecture config as the served model), registered under a new version,
and atomically swapped into the service — while the old model keeps serving
every request until the very last step.
"""

from __future__ import annotations

import threading

from ..core.model import DuetModel
from ..core.trainer import DuetTrainer

__all__ = ["ColdTrainResult", "cold_train_and_swap", "start_cold_train"]


class ColdTrainResult:
    """Outcome handle of one cold train (synchronous or background).

    ``wait()`` joins a background run; ``entry`` is the registry entry of
    the new model (``None`` when no registry is attached), ``error`` the
    exception that aborted the run (``None`` on success), ``rejected``
    whether the canary gate turned the trained candidate away (the model
    was neither registered nor swapped; the incumbent keeps serving).
    """

    def __init__(self) -> None:
        self.entry = None
        self.model: DuetModel | None = None
        self.data_version: int | None = None
        self.error: Exception | None = None
        self.rejected = False
        self._done = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def ok(self) -> bool:
        return self.done and self.error is None and not self.rejected

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)


def cold_train_and_swap(service, *, epochs: int | None = None,
                        training_workload=None, config=None,
                        throttle=None, version: str | None = None,
                        result: ColdTrainResult | None = None,
                        gate=None) -> ColdTrainResult:
    """Train a fresh model on the store's current snapshot and swap it in.

    Runs synchronously on the calling thread (the scheduler calls it from a
    background thread via :func:`start_cold_train`).  The served model is
    untouched until the final :meth:`~EstimationService.swap_model`, so
    serving never sees a half-trained model; a failure leaves the service
    exactly as it was and is reported on the returned result instead of
    raised, matching the controller's never-crash-serving contract.

    ``gate`` is the canary hook: called with the trained candidate before
    it is registered or swapped; returning falsy marks the result
    ``rejected`` and leaves service and registry untouched.  When the swap
    itself fails after registration, the just-saved version is discarded
    again so a never-served model cannot become the registry's protected
    "latest".
    """
    result = result or ColdTrainResult()
    try:
        if service.store is None:
            raise RuntimeError("cold_train_and_swap needs a service with a "
                               "live ColumnStore")
        snapshot = service.store.snapshot()
        served = getattr(service.estimator, "model", None)
        if config is None:
            if served is None:
                raise RuntimeError(
                    f"estimator {service.estimator.name!r} has no model to "
                    f"take an architecture config from; pass config=...")
            config = served.config
        model = DuetModel(snapshot, config)
        trainer = DuetTrainer(model, snapshot, training_workload, config,
                              throttle=throttle)
        trainer.train(epochs)
        result.model = model
        result.data_version = snapshot.data_version
        if gate is not None and not gate(model):
            result.rejected = True
            return result
        entry = None
        if service.registry is not None:
            entry = service.registry.save(
                model, service.dataset, version=version,
                metadata={"cold_trained": True,
                          "escalated_from": service.model_version},
                compile_options=getattr(service.estimator, "compile_options",
                                        None),
                data_version=snapshot.data_version)
        try:
            service.swap_model(model, data_version=snapshot.data_version,
                               model_version=entry.version if entry else None)
        except Exception:
            if entry is not None:
                service.registry.discard(entry.dataset, entry.version)
            raise
        result.entry = entry
    except Exception as error:  # noqa: BLE001 — reported, never raised into serving
        result.error = error
    finally:
        result._done.set()
    return result


def start_cold_train(service, *, epochs: int | None = None,
                     training_workload=None, config=None, throttle=None,
                     version: str | None = None, gate=None) -> ColdTrainResult:
    """Run :func:`cold_train_and_swap` on a daemon thread; returns its handle."""
    result = ColdTrainResult()
    thread = threading.Thread(
        target=cold_train_and_swap,
        kwargs=dict(service=service, epochs=epochs,
                    training_workload=training_workload, config=config,
                    throttle=throttle, version=version, result=result,
                    gate=gate),
        name="repro-cold-train", daemon=True)
    result._thread = thread
    thread.start()
    return result
