"""The refresh scheduler: a daemon-thread policy loop over one service.

This is the autonomous half of the paper's operational claim.  PR 3 made
models *refreshable* (``EstimationService.refresh()``); this loop makes them
*refreshed*: it periodically asks the :class:`DriftMonitor` for a
:class:`~repro.lifecycle.RefreshDecision` and acts on it, with the guard
rails a production control plane needs:

* **debounce** — a positive decision must hold for ``debounce_polls``
  consecutive evaluations before a tune starts, so an append burst is
  absorbed by one tune at the end instead of one per batch;
* **cooldown** — at least ``cooldown_seconds`` between controller-initiated
  tunes, bounding training cost under sustained churn;
* **backpressure** — at most one tune is ever in flight (fine-tune *or*
  cold train), and the tuning loop yields to serving threads in bounded
  batch slices (:attr:`LifecyclePolicy.tune_slice_batches` /
  :attr:`~LifecyclePolicy.tune_yield_seconds`);
* **escalation** — a refresh failing with
  :class:`~repro.data.DomainGrowthError` launches a background cold train
  (:mod:`repro.lifecycle.coldtrain`) that swaps atomically when ready, so
  domain growth degrades to eventual freshness instead of an exception;
* **retention** — after every successful tune the
  :class:`~repro.lifecycle.RetentionPolicy` prunes superseded registry
  versions and trims unreachable store version metadata;
* **compaction** — when deletes push the store's tombstone fraction past
  :attr:`LifecyclePolicy.compact_tombstone_fraction`, the
  :class:`~repro.lifecycle.CompactionPolicy` rewrites the chunks to drop
  dead rows and escalates to the same background cold-train/swap path
  (deltas cannot span a compaction, and a clean retrain erases the
  approximation negative-replay fine-tuning accumulates).

Every step is recorded in the :class:`~repro.lifecycle.EventLog`; nothing
the loop does can raise into (or block) the serving path.
"""

from __future__ import annotations

import threading
import time

from ..core.config import LifecyclePolicy
from ..data.store import DomainGrowthError
from .coldtrain import ColdTrainResult, start_cold_train
from .compaction import CompactionPolicy
from .events import EventLog, LifecycleEvent
from .monitor import DriftMonitor, RefreshDecision
from .retention import RetentionPolicy

__all__ = ["RefreshScheduler"]


class RefreshScheduler:
    """Background control plane keeping one service's model fresh."""

    def __init__(self, service, policy: LifecyclePolicy | None = None,
                 monitor: DriftMonitor | None = None,
                 events: EventLog | None = None,
                 retention: RetentionPolicy | None = None,
                 compaction: CompactionPolicy | None = None,
                 seed: int = 0) -> None:
        self.service = service
        self.policy = policy or (monitor.policy if monitor is not None
                                 else LifecyclePolicy())
        self.monitor = monitor or DriftMonitor(service, self.policy, seed=seed)
        self.events = events or EventLog()
        self.retention = retention or RetentionPolicy(self.policy)
        self.compaction = compaction or CompactionPolicy(self.policy)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Backpressure: holders of this lock are "the one tune in flight".
        self._tune_lock = threading.Lock()
        self._cold_train: ColdTrainResult | None = None
        # Serialises cold-train finalisation between the loop thread and
        # quiesce() callers, so the outcome is folded in exactly once.
        self._finalise_lock = threading.Lock()
        self._consecutive_hits = 0
        self._last_tune_at: float | None = None

    # ------------------------------------------------------------------
    # Daemon lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "RefreshScheduler":
        """Attach the monitor and start the policy loop; returns ``self``."""
        if self.running:
            return self
        self.monitor.attach()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-lifecycle-scheduler")
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the loop (an in-flight background cold train keeps running)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.monitor.detach()

    def __enter__(self) -> "RefreshScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.policy.poll_interval_seconds):
            try:
                self.poll_once()
            except Exception as error:  # noqa: BLE001 — the loop must survive
                self.events.record("error", stage="poll", error=repr(error))

    # ------------------------------------------------------------------
    # One policy evaluation (also the synchronous test surface)
    # ------------------------------------------------------------------
    def poll_once(self) -> LifecycleEvent:
        """Evaluate the policy once and act on it; returns the decision event."""
        pending = self._finalise_cold_train()
        if pending is not None:
            return pending
        compacted = self._maybe_compact()
        if compacted is not None:
            return compacted
        decision = self.monitor.decide()
        action = self._action_for(decision)
        event = self.events.record(
            "decision", action=action, reasons=list(decision.reasons),
            stale_rows=decision.metrics.stale_rows,
            stale_fraction=round(decision.metrics.stale_fraction, 4),
            median_qerror=decision.metrics.median_qerror,
            probe_size=decision.metrics.probe_size)
        if action == "tune":
            self._execute(decision)
        return event

    def _action_for(self, decision: RefreshDecision) -> str:
        if not decision:
            self._consecutive_hits = 0
            return "hold"
        self._consecutive_hits += 1
        if self._consecutive_hits < self.policy.debounce_polls:
            return "debounce"
        if self._in_cooldown():
            return "cooldown"
        return "tune"

    def _in_cooldown(self) -> bool:
        return (self._last_tune_at is not None
                and time.monotonic() - self._last_tune_at
                < self.policy.cooldown_seconds)

    # ------------------------------------------------------------------
    # Acting on a decision
    # ------------------------------------------------------------------
    def _execute(self, decision: RefreshDecision) -> None:
        if not self._tune_lock.acquire(blocking=False):
            return  # another tune is in flight; the next poll re-evaluates
        try:
            started = time.perf_counter()
            swaps_before = self.service.snapshot().model_swaps
            try:
                entry = self.service.refresh(epochs=self.policy.refresh_epochs,
                                             throttle=self._make_throttle())
            except DomainGrowthError as error:
                if not self.policy.cold_train_on_growth:
                    self.events.record("error", stage="refresh",
                                       error=repr(error))
                    return
                self._cold_train = start_cold_train(
                    self.service, epochs=self.policy.cold_train_epochs,
                    throttle=self._make_throttle())
                self.events.record("cold_train", status="started",
                                   grown_columns=list(error.columns))
                return
            except Exception as error:  # noqa: BLE001 — log, keep serving
                self.events.record("error", stage="refresh", error=repr(error))
                return
            # refresh() returns None both for "tuned, no registry" and for
            # "nothing to do" (the triggers can fire on pure accuracy decay
            # with zero staleness); only a real swap earns a refresh event,
            # a rebased baseline, and a retention sweep.
            if (entry is None
                    and self.service.snapshot().model_swaps == swaps_before):
                self.events.record("decision", action="refresh_noop",
                                   reasons=list(decision.reasons))
                return
            self.events.record(
                "refresh", reasons=list(decision.reasons),
                version=entry.version if entry is not None
                else self.service.model_version,
                data_version=self.service.data_version,
                seconds=round(time.perf_counter() - started, 3))
            self._after_tune()
        finally:
            self._consecutive_hits = 0
            self._last_tune_at = time.monotonic()
            self._tune_lock.release()

    def _maybe_compact(self) -> LifecycleEvent | None:
        """Compact a tombstone-heavy store and escalate; ``None`` when idle.

        Compaction is cheap but the cold train it escalates to is not, so
        the check respects the tune cooldown and the at-most-one-tune rule
        (the tombstone fraction persists, so a skipped opportunity simply
        fires on a later poll).  Like every scheduler action it is
        error-contained: a failure is logged and serving continues against
        the uncompacted store.
        """
        if not self.compaction.should_compact(getattr(self.service, "store",
                                                      None)):
            return None
        if self._in_cooldown():
            return None
        if not self._tune_lock.acquire(blocking=False):
            return None
        try:
            report = self.compaction.compact(self.service)
            event = self.events.record(
                "compaction",
                tombstone_fraction=round(report.tombstone_fraction, 4),
                dropped_rows=report.dropped_rows,
                data_version=report.data_version)
            # The served model's delta base predates the new chunk layout:
            # fine-tuning can no longer see what changed, so go straight to
            # the background cold-train/swap path.
            self._cold_train = start_cold_train(
                self.service, epochs=self.policy.cold_train_epochs,
                throttle=self._make_throttle())
            self.events.record("cold_train", status="started",
                               reason="compaction")
            return event
        except Exception as error:  # noqa: BLE001 — log, keep serving
            return self.events.record("error", stage="compaction",
                                      error=repr(error))
        finally:
            self._last_tune_at = time.monotonic()
            self._tune_lock.release()

    def _finalise_cold_train(self) -> LifecycleEvent | None:
        """Bookkeeping for an in-flight escalation; ``None`` when idle.

        While a cold train runs, polling reports instead of tuning (the
        at-most-one-tune rule); once it lands, record the outcome, rebase
        the drift baseline onto the new model, and run retention.
        """
        with self._finalise_lock:
            pending = self._cold_train
            if pending is None:
                return None
            if not pending.done:
                return self.events.record("decision", action="cold_train_pending")
            self._cold_train = None
        if pending.error is not None:
            self._last_tune_at = time.monotonic()
            return self.events.record("error", stage="cold_train",
                                      error=repr(pending.error))
        event = self.events.record(
            "cold_train", status="swapped",
            version=pending.entry.version if pending.entry is not None
            else self.service.model_version,
            data_version=pending.data_version)
        self._after_tune()
        self._last_tune_at = time.monotonic()
        return event

    def _after_tune(self) -> None:
        """Post-tune hygiene: rebase drift baseline, apply retention."""
        try:
            baseline = self.monitor.rebase()
        except Exception as error:  # noqa: BLE001 — log, keep serving
            self.events.record("error", stage="rebase", error=repr(error))
            baseline = None
        report = self.retention.apply(self.service)
        self.events.record(
            "retention",
            pruned_model_versions=list(report.pruned_model_versions),
            trimmed_store_versions=report.trimmed_store_versions,
            baseline_qerror=baseline)

    def _make_throttle(self):
        """Backpressure hook for the tuning loop: yield every K steps."""
        policy = self.policy
        if policy.tune_yield_seconds <= 0:
            return None
        steps = 0

        def throttle() -> None:
            nonlocal steps
            steps += 1
            if steps % policy.tune_slice_batches == 0:
                time.sleep(policy.tune_yield_seconds)

        return throttle

    # ------------------------------------------------------------------
    # Introspection / synchronisation
    # ------------------------------------------------------------------
    @property
    def cold_train_in_flight(self) -> bool:
        return self._cold_train is not None and not self._cold_train.done

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait for any in-flight cold train and fold its result in.

        Returns ``True`` when no escalation is pending afterwards.  Used by
        tests and soak drivers that need a deterministic "controller is
        idle" point.
        """
        pending = self._cold_train
        if pending is None:
            return True
        if not pending.wait(timeout):
            return False
        self._finalise_cold_train()
        return True
