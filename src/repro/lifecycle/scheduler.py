"""The refresh scheduler: a daemon-thread policy loop over one service.

This is the autonomous half of the paper's operational claim.  PR 3 made
models *refreshable* (``EstimationService.refresh()``); this loop makes them
*refreshed*: it periodically asks the :class:`DriftMonitor` for a
:class:`~repro.lifecycle.RefreshDecision` and acts on it, with the guard
rails a production control plane needs:

* **debounce** — a positive decision must hold for ``debounce_polls``
  consecutive evaluations before a tune starts, so an append burst is
  absorbed by one tune at the end instead of one per batch;
* **cooldown** — at least ``cooldown_seconds`` between controller-initiated
  tunes, bounding training cost under sustained churn;
* **backpressure** — at most one tune is ever in flight (fine-tune *or*
  cold train), and the tuning loop yields to serving threads in bounded
  batch slices (:attr:`LifecyclePolicy.tune_slice_batches` /
  :attr:`~LifecyclePolicy.tune_yield_seconds`);
* **escalation** — a refresh failing with
  :class:`~repro.data.DomainGrowthError` launches a background cold train
  (:mod:`repro.lifecycle.coldtrain`) that swaps atomically when ready, so
  domain growth degrades to eventual freshness instead of an exception;
* **retention** — after every successful tune the
  :class:`~repro.lifecycle.RetentionPolicy` prunes superseded registry
  versions and trims unreachable store version metadata;
* **compaction** — when deletes push the store's tombstone fraction past
  :attr:`LifecyclePolicy.compact_tombstone_fraction`, the
  :class:`~repro.lifecycle.CompactionPolicy` rewrites the chunks to drop
  dead rows and escalates to the same background cold-train/swap path
  (deltas cannot span a compaction, and a clean retrain erases the
  approximation negative-replay fine-tuning accumulates);
* **canary gating** — every candidate the loop produces (fine-tune or cold
  train) is shadow-evaluated by the :class:`~repro.lifecycle.ShadowEvaluator`
  against the drift probe set before it may swap in; a candidate whose probe
  median Q-Error is worse than ``canary_margin`` times the incumbent's is
  rejected (``canary_reject`` event) and the incumbent keeps serving;
* **failure backoff & circuit breaker** — a failed refresh / cold train /
  compaction parks the tune path for an exponentially growing
  ``failure_backoff_seconds`` window instead of consuming the success
  cooldown; ``breaker_failure_threshold`` *consecutive* failures open a
  circuit breaker that refuses all tuning until ``breaker_cooldown_seconds``
  pass, then half-opens for a single trial (success closes it, failure
  re-opens).  Every transition is a ``breaker`` event.

Every step is recorded in the :class:`~repro.lifecycle.EventLog`; nothing
the loop does can raise into (or block) the serving path.
"""

from __future__ import annotations

import threading
import time

from ..core.config import LifecyclePolicy
from ..data.store import DomainGrowthError
from ..obs import MetricsRegistry
from .coldtrain import ColdTrainResult, start_cold_train
from .compaction import CompactionPolicy
from .events import EventLog, LifecycleEvent
from .monitor import DriftMonitor, RefreshDecision
from .retention import RetentionPolicy
from .shadow import ShadowEvaluator

__all__ = ["RefreshScheduler"]

#: numeric encoding of the circuit-breaker state for the exported gauge
BREAKER_STATE_LEVELS = {"closed": 0, "half_open": 1, "open": 2}

#: tune/compaction duration buckets (seconds) — training runs, not requests
TUNE_SECONDS_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                        60.0, 300.0)


class RefreshScheduler:
    """Background control plane keeping one service's model fresh."""

    def __init__(self, service, policy: LifecyclePolicy | None = None,
                 monitor: DriftMonitor | None = None,
                 events: EventLog | None = None,
                 retention: RetentionPolicy | None = None,
                 compaction: CompactionPolicy | None = None,
                 seed: int = 0,
                 metrics: MetricsRegistry | None = None) -> None:
        self.service = service
        self.policy = policy or (monitor.policy if monitor is not None
                                 else LifecyclePolicy())
        self.monitor = monitor or DriftMonitor(service, self.policy, seed=seed)
        # Default to the service's registry so serving and lifecycle land in
        # one exposition; a service without one gets a private registry.
        self.metrics = (metrics if metrics is not None
                        else getattr(service, "metrics", None) or MetricsRegistry())
        self.events = events or EventLog(metrics=self.metrics)
        self.retention = retention or RetentionPolicy(self.policy)
        self.compaction = compaction or CompactionPolicy(self.policy)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Backpressure: holders of this lock are "the one tune in flight".
        self._tune_lock = threading.Lock()
        self._cold_train: ColdTrainResult | None = None
        # Serialises cold-train finalisation between the loop thread and
        # quiesce() callers, so the outcome is folded in exactly once.
        self._finalise_lock = threading.Lock()
        self._consecutive_hits = 0
        self._last_tune_at: float | None = None
        self.shadow = ShadowEvaluator(self.monitor, self.policy)
        # Chaos seam: tests/soak drivers install a FaultInjector here; the
        # throttle closure fires it at site "trainer.step".
        self.fault_injector = None
        self._consecutive_failures = 0
        self._backoff_until: float | None = None
        self._breaker_state = "closed"  # closed | open | half_open
        self._breaker_opened_at: float | None = None
        self._register_instruments()

    def _register_instruments(self) -> None:
        """Register the control plane's metrics (idempotent on a shared registry)."""
        metrics = self.metrics
        self._poll_seconds = metrics.histogram(
            "repro_lifecycle_poll_seconds",
            "Duration of one scheduler policy evaluation.").labels()
        self._tune_seconds = metrics.histogram(
            "repro_lifecycle_tune_seconds",
            "Duration of tune-path actions, by stage.",
            labels=("stage",), buckets=TUNE_SECONDS_BUCKETS)
        self._breaker_gauge = metrics.gauge(
            "repro_lifecycle_breaker_state",
            "Circuit breaker over the tune path "
            "(0=closed, 1=half_open, 2=open).").labels()
        self._breaker_gauge.set(BREAKER_STATE_LEVELS[self._breaker_state])
        self._canary_gauge = metrics.gauge(
            "repro_canary_last_ratio",
            "Last canary verdict's candidate/incumbent probe median "
            "Q-Error ratio (<= margin passes; 0 until a canary runs).").labels()
        metrics.gauge(
            "repro_store_physical_rows",
            "Physical rows in the live store (incl. tombstoned).",
            fn=lambda: self._store_stat("physical_rows"))
        metrics.gauge(
            "repro_store_live_rows",
            "Live (non-tombstoned) rows in the store.",
            fn=lambda: self._store_stat("num_rows"))
        metrics.gauge(
            "repro_store_tombstone_fraction",
            "Dead-row fraction of the store (compaction trigger input).",
            fn=lambda: self._store_stat("tombstone_fraction"))
        metrics.gauge(
            "repro_store_data_version",
            "Current data version of the live store.",
            fn=lambda: self._store_stat("data_version"))
        metrics.gauge(
            "repro_registry_model_versions",
            "Model versions the registry currently retains for this dataset.",
            fn=self._registry_versions)

    def _store_stat(self, attribute: str) -> float:
        store = getattr(self.service, "store", None)
        if store is None:
            return 0.0
        return float(getattr(store, attribute))

    def _registry_versions(self) -> float:
        registry = getattr(self.service, "registry", None)
        if registry is None:
            return 0.0
        return float(len(registry.versions(self.service.dataset)))

    # ------------------------------------------------------------------
    # Daemon lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "RefreshScheduler":
        """Attach the monitor and start the policy loop; returns ``self``."""
        if self.running:
            return self
        self.monitor.attach()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-lifecycle-scheduler")
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop the loop (an in-flight background cold train keeps running)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self.monitor.detach()

    def __enter__(self) -> "RefreshScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.policy.poll_interval_seconds):
            try:
                self.poll_once()
            except Exception as error:  # noqa: BLE001 — the loop must survive
                self.events.record("error", stage="poll", error=repr(error))

    # ------------------------------------------------------------------
    # One policy evaluation (also the synchronous test surface)
    # ------------------------------------------------------------------
    def poll_once(self) -> LifecycleEvent:
        """Evaluate the policy once and act on it; returns the decision event."""
        poll_started = time.perf_counter()
        try:
            pending = self._finalise_cold_train()
            if pending is not None:
                return pending
            self._breaker_poll()
            compacted = self._maybe_compact()
            if compacted is not None:
                return compacted
            decision = self.monitor.decide()
            action = self._action_for(decision)
            event = self.events.record(
                "decision", action=action, reasons=list(decision.reasons),
                stale_rows=decision.metrics.stale_rows,
                stale_fraction=round(decision.metrics.stale_fraction, 4),
                median_qerror=decision.metrics.median_qerror,
                probe_size=decision.metrics.probe_size)
            if action == "tune":
                self._execute(decision)
            return event
        finally:
            self._poll_seconds.observe(time.perf_counter() - poll_started)

    def _action_for(self, decision: RefreshDecision) -> str:
        if not decision:
            self._consecutive_hits = 0
            return "hold"
        self._consecutive_hits += 1
        if self._consecutive_hits < self.policy.debounce_polls:
            return "debounce"
        if self._breaker_state == "open":
            return "breaker_open"
        if self._in_backoff():
            return "backoff"
        if self._in_cooldown():
            return "cooldown"
        return "tune"

    def _in_cooldown(self) -> bool:
        return (self._last_tune_at is not None
                and time.monotonic() - self._last_tune_at
                < self.policy.cooldown_seconds)

    # ------------------------------------------------------------------
    # Failure accounting: backoff + circuit breaker
    # ------------------------------------------------------------------
    @property
    def breaker_state(self) -> str:
        """Circuit-breaker state: ``closed`` | ``open`` | ``half_open``."""
        return self._breaker_state

    def _in_backoff(self) -> bool:
        return (self._backoff_until is not None
                and time.monotonic() < self._backoff_until)

    def _breaker_poll(self) -> None:
        """Half-open an expired breaker so the next decision may trial-tune."""
        if (self._breaker_state == "open"
                and self._breaker_opened_at is not None
                and time.monotonic() - self._breaker_opened_at
                >= self.policy.breaker_cooldown_seconds):
            self._breaker_state = "half_open"
            self._breaker_gauge.set(BREAKER_STATE_LEVELS["half_open"])
            self.events.record("breaker", state="half_open",
                               consecutive_failures=self._consecutive_failures)

    def _note_failure(self, stage: str) -> None:
        """Fold one tune-path failure into backoff and breaker state.

        Failures deliberately do *not* touch ``_last_tune_at``: the success
        cooldown spaces out training *cost*, while this path spaces out
        *retries* — a failed tune that consumed the cooldown would delay the
        recovery it never earned.
        """
        policy = self.policy
        self._consecutive_failures += 1
        if policy.failure_backoff_seconds > 0:
            delay = min(policy.failure_backoff_seconds
                        * 2 ** (self._consecutive_failures - 1),
                        policy.failure_backoff_max_seconds)
            self._backoff_until = time.monotonic() + delay
        threshold = policy.breaker_failure_threshold
        opens = (self._breaker_state == "half_open"
                 or (self._breaker_state == "closed" and threshold is not None
                     and self._consecutive_failures >= threshold))
        if opens:
            self._breaker_state = "open"
            self._breaker_opened_at = time.monotonic()
            self._breaker_gauge.set(BREAKER_STATE_LEVELS["open"])
            self.events.record(
                "breaker", state="open", stage=stage,
                consecutive_failures=self._consecutive_failures,
                cooldown_seconds=self.policy.breaker_cooldown_seconds)

    def _note_success(self) -> None:
        """A tune landed: clear failure state, close the breaker, start cooldown."""
        if self._breaker_state != "closed":
            self._breaker_state = "closed"
            self._breaker_opened_at = None
            self._breaker_gauge.set(BREAKER_STATE_LEVELS["closed"])
            self.events.record("breaker", state="closed")
        self._consecutive_failures = 0
        self._backoff_until = None
        self._last_tune_at = time.monotonic()

    # ------------------------------------------------------------------
    # Acting on a decision
    # ------------------------------------------------------------------
    def _execute(self, decision: RefreshDecision) -> None:
        if not self._tune_lock.acquire(blocking=False):
            return  # another tune is in flight; the next poll re-evaluates
        started = time.perf_counter()
        try:
            swaps_before = self.service.snapshot().model_swaps
            rejected: list = []
            try:
                entry = self.service.refresh(
                    epochs=self.policy.refresh_epochs,
                    throttle=self._make_throttle(),
                    gate=self._canary_gate("refresh", rejected))
            except DomainGrowthError as error:
                if not self.policy.cold_train_on_growth:
                    self.events.record("error", stage="refresh",
                                       error=repr(error))
                    self._note_failure("refresh")
                    return
                self._cold_train = start_cold_train(
                    self.service, epochs=self.policy.cold_train_epochs,
                    throttle=self._make_throttle(),
                    gate=self._canary_gate("cold_train"))
                self.events.record("cold_train", status="started",
                                   grown_columns=list(error.columns))
                return
            except Exception as error:  # noqa: BLE001 — log, keep serving
                self.events.record("error", stage="refresh", error=repr(error))
                self._note_failure("refresh")
                return
            if rejected:
                # Canary turned the candidate away: not a fault (backoff
                # would punish a control plane doing its job), but the tune
                # burned real cycles, so the success cooldown still applies.
                self._last_tune_at = time.monotonic()
                return
            # refresh() returns None both for "tuned, no registry" and for
            # "nothing to do" (the triggers can fire on pure accuracy decay
            # with zero staleness); only a real swap earns a refresh event,
            # a rebased baseline, and a retention sweep.
            if (entry is None
                    and self.service.snapshot().model_swaps == swaps_before):
                self.events.record("decision", action="refresh_noop",
                                   reasons=list(decision.reasons))
                self._last_tune_at = time.monotonic()
                return
            self.events.record(
                "refresh", reasons=list(decision.reasons),
                version=entry.version if entry is not None
                else self.service.model_version,
                data_version=self.service.data_version,
                seconds=round(time.perf_counter() - started, 3))
            self._after_tune()
            self._note_success()
        finally:
            self._tune_seconds.observe(time.perf_counter() - started,
                                       stage="refresh")
            self._consecutive_hits = 0
            self._tune_lock.release()

    def _maybe_compact(self) -> LifecycleEvent | None:
        """Compact a tombstone-heavy store and escalate; ``None`` when idle.

        Compaction is cheap but the cold train it escalates to is not, so
        the check respects the tune cooldown, the failure backoff/breaker,
        and the at-most-one-tune rule (the tombstone fraction persists, so a
        skipped opportunity simply fires on a later poll).  Like every
        scheduler action it is error-contained: a failure is logged, feeds
        the failure backoff, and serving continues against the uncompacted
        store.
        """
        if not self.compaction.should_compact(getattr(self.service, "store",
                                                      None)):
            return None
        if self._breaker_state == "open" or self._in_backoff():
            return None
        if self._in_cooldown():
            return None
        if not self._tune_lock.acquire(blocking=False):
            return None
        compact_started = time.perf_counter()
        try:
            report = self.compaction.compact(self.service)
            event = self.events.record(
                "compaction",
                tombstone_fraction=round(report.tombstone_fraction, 4),
                dropped_rows=report.dropped_rows,
                data_version=report.data_version)
            self._last_tune_at = time.monotonic()
            # The served model's delta base predates the new chunk layout:
            # fine-tuning can no longer see what changed, so go straight to
            # the background cold-train/swap path.
            self._cold_train = start_cold_train(
                self.service, epochs=self.policy.cold_train_epochs,
                throttle=self._make_throttle(),
                gate=self._canary_gate("cold_train"))
            self.events.record("cold_train", status="started",
                               reason="compaction")
            return event
        except Exception as error:  # noqa: BLE001 — log, keep serving
            self._note_failure("compaction")
            return self.events.record("error", stage="compaction",
                                      error=repr(error))
        finally:
            self._tune_seconds.observe(time.perf_counter() - compact_started,
                                       stage="compaction")
            self._tune_lock.release()

    def _finalise_cold_train(self) -> LifecycleEvent | None:
        """Bookkeeping for an in-flight escalation; ``None`` when idle.

        While a cold train runs, polling reports instead of tuning (the
        at-most-one-tune rule); once it lands, record the outcome, rebase
        the drift baseline onto the new model, and run retention.
        """
        with self._finalise_lock:
            pending = self._cold_train
            if pending is None:
                return None
            if not pending.done:
                return self.events.record("decision", action="cold_train_pending")
            self._cold_train = None
        if pending.error is not None:
            self._note_failure("cold_train")
            return self.events.record("error", stage="cold_train",
                                      error=repr(pending.error))
        if pending.rejected:
            # The canary already recorded its canary_reject; the incumbent
            # keeps serving, and the wasted training cost starts a cooldown.
            self._last_tune_at = time.monotonic()
            return self.events.record("cold_train", status="rejected",
                                      data_version=pending.data_version)
        event = self.events.record(
            "cold_train", status="swapped",
            version=pending.entry.version if pending.entry is not None
            else self.service.model_version,
            data_version=pending.data_version)
        self._after_tune()
        self._note_success()
        return event

    def _after_tune(self) -> None:
        """Post-tune hygiene: rebase drift baseline, apply retention."""
        try:
            baseline = self.monitor.rebase()
        except Exception as error:  # noqa: BLE001 — log, keep serving
            self.events.record("error", stage="rebase", error=repr(error))
            baseline = None
        report = self.retention.apply(self.service)
        self.events.record(
            "retention",
            pruned_model_versions=list(report.pruned_model_versions),
            trimmed_store_versions=report.trimmed_store_versions,
            baseline_qerror=baseline)

    def _canary_gate(self, stage: str, rejected: list | None = None):
        """Build the shadow-evaluation gate for one tune attempt.

        Returns ``None`` when canary gating is disabled
        (``canary_margin=None``).  The gate records a ``canary_pass`` /
        ``canary_reject`` event per verdict and appends reject reports to
        ``rejected`` (the caller's box for telling a rejection apart from a
        no-op).  An evaluation *error* fails open — a broken canary must not
        be able to park refreshes forever — but is logged.
        """
        shadow = getattr(self, "shadow", None)
        if shadow is None or not shadow.enabled:
            return None

        def gate(candidate) -> bool:
            try:
                report = shadow.evaluate(candidate)
            except Exception as error:  # noqa: BLE001 — fail open
                self.events.record("error", stage=f"canary_{stage}",
                                   error=repr(error))
                return True
            self.events.record(
                "canary_pass" if report.passed else "canary_reject",
                stage=stage, reason=report.reason,
                candidate_median=report.candidate_median,
                incumbent_median=report.incumbent_median,
                margin=report.margin, probe_size=report.probe_size)
            if (report.candidate_median is not None
                    and report.incumbent_median):
                self._canary_gauge.set(report.candidate_median
                                       / report.incumbent_median)
            if not report.passed and rejected is not None:
                rejected.append(report)
            return report.passed

        return gate

    def _make_throttle(self):
        """Backpressure hook for the tuning loop: yield every K steps.

        Doubles as the trainer's fault seam: an installed
        :class:`~repro.lifecycle.FaultInjector` fires at ``trainer.step``
        on every optimiser step, inside the training loop but outside the
        serving path.
        """
        policy = self.policy
        injector = getattr(self, "fault_injector", None)
        if policy.tune_yield_seconds <= 0 and injector is None:
            return None
        steps = 0

        def throttle() -> None:
            nonlocal steps
            steps += 1
            if injector is not None:
                injector.fire("trainer.step", step=steps)
            if (policy.tune_yield_seconds > 0
                    and steps % policy.tune_slice_batches == 0):
                time.sleep(policy.tune_yield_seconds)

        return throttle

    # ------------------------------------------------------------------
    # Introspection / synchronisation
    # ------------------------------------------------------------------
    @property
    def cold_train_in_flight(self) -> bool:
        return self._cold_train is not None and not self._cold_train.done

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait for any in-flight cold train and fold its result in.

        Returns ``True`` when no escalation is pending afterwards.  Used by
        tests and soak drivers that need a deterministic "controller is
        idle" point.
        """
        pending = self._cold_train
        if pending is None:
            return True
        if not pending.wait(timeout):
            return False
        self._finalise_cold_train()
        return True
