"""Reproduction of "Duet: Efficient and Scalable Hybrid Neural Relation
Understanding" (ICDE 2024).

The package is organised as one sub-package per subsystem:

* :mod:`repro.nn` — pure-NumPy neural-network substrate (autograd, MADE,
  optimisers) replacing PyTorch;
* :mod:`repro.data` — columns, tables, synthetic dataset generators;
* :mod:`repro.workload` — predicates, queries, ground truth, generators;
* :mod:`repro.core` — Duet itself (model, virtual-table sampler, MPSN,
  trainer, estimator);
* :mod:`repro.baselines` — Sampling, Indep, MHist, MSCN, DeepDB-SPN, Naru,
  UAE comparison estimators;
* :mod:`repro.eval` — Q-Error metrics, evaluation harness, experiment
  drivers for every table and figure of the paper;
* :mod:`repro.serving` — online estimation service (model registry,
  estimate cache, micro-batching scheduler, load-test client);
* :mod:`repro.lifecycle` — autonomous lifecycle controller (drift
  monitoring, refresh scheduling with backpressure, cold-train escalation,
  version retention);
* :mod:`repro.obs` — observability substrate (metrics registry, sampled
  request tracing, snapshot exporter) the serving and lifecycle planes
  report through.

Quickstart::

    from repro import data, workload, core

    table = data.make_census(scale=0.05)
    train_queries = workload.make_inworkload(table, num_queries=500)
    model = core.DuetModel(table, core.small_table_config(epochs=3))
    core.DuetTrainer(model, table, train_queries).train()
    estimator = core.DuetEstimator(model)
    estimator.estimate(workload.Query.from_triples([("age", ">=", 30)]))
"""

from . import baselines, core, data, eval, lifecycle, nn, obs, serving, workload

__version__ = "1.3.0"

__all__ = ["baselines", "core", "data", "eval", "lifecycle", "nn", "obs",
           "serving", "workload", "__version__"]
