"""Exact ground-truth query execution.

Every experiment needs true cardinalities as labels (for training the
query-driven and hybrid methods) and as the reference of the Q-Error metric.
This executor computes them exactly with vectorised NumPy scans over the
dictionary-encoded code matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.store import TableDelta
from ..data.table import Table
from .query import Query

__all__ = ["execute", "cardinality", "selectivity", "true_cardinalities",
           "true_cardinalities_delta"]


def _require_data(table: Table) -> None:
    """Refuse tables that do not carry their tuples (schema-only stand-ins)."""
    if table.columns[0].num_rows != table.num_rows:
        raise ValueError(
            f"table {table.name!r} reports {table.num_rows} rows but its columns "
            f"carry {table.columns[0].num_rows} tuples (a schema-only stand-in?); "
            f"ground truth needs the data table")


def execute(table: Table, query: Query) -> np.ndarray:
    """Return the boolean row mask of tuples satisfying ``query``."""
    _require_data(table)
    query.validate(table)
    mask = np.ones(table.num_rows, dtype=bool)
    for predicate in query.predicates:
        column = table.column(predicate.column)
        mask &= predicate.evaluate_codes(column, column.codes)
        if not mask.any():
            break
    return mask


def cardinality(table: Table, query: Query) -> int:
    """Exact number of tuples satisfying ``query``."""
    return int(execute(table, query).sum())


def selectivity(table: Table, query: Query) -> float:
    """Exact selectivity ``cardinality / num_rows``."""
    return cardinality(table, query) / max(table.num_rows, 1)


def true_cardinalities(table: Table, queries: Sequence[Query],
                       chunk_size: int = 32) -> np.ndarray:
    """Exact cardinalities of a batch of queries.

    Queries are labelled in chunks of ``chunk_size``: every query's
    predicates are first intersected into one inclusive code interval per
    constrained column (conjunctions of interval predicates stay intervals),
    then, per chunk, each constrained column's code array is scanned **once**
    against all the chunk's intervals instead of once per query.  Queries
    with an unsatisfiable interval are answered 0 without touching the data,
    and predicates covering a column's whole domain are dropped.  The chunk
    size keeps the per-chunk boolean row masks cache-resident — larger is
    not faster.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    _require_data(table)
    queries = list(queries)
    num_queries = len(queries)
    intervals, unsatisfiable = _interval_index(table, queries)
    counts = np.full(num_queries, table.num_rows, dtype=np.int64)

    # Columns constraining many queries go first so the first column can
    # seed the chunk mask directly instead of AND-ing into an all-ones one.
    column_order = sorted(intervals, key=lambda index: -len(intervals[index]))
    # One uint32 cast per column per call (shared by all chunks) halves the
    # memory traffic of the scans and enables the single-comparison trick.
    codes_by_column = {index: table.column(index).codes.astype(np.uint32)
                       for index in column_order}

    for start in range(0, num_queries, chunk_size):
        stop = min(start + chunk_size, num_queries)
        mask: np.ndarray | None = None
        for column_index in column_order:
            per_query = intervals[column_index]
            rows = np.array([index - start for index in range(start, stop)
                             if index in per_query and not unsatisfiable[index]],
                            dtype=np.int64)
            if not rows.size:
                continue
            codes = codes_by_column[column_index]
            lows = np.array([per_query[start + row][0] for row in rows],
                            dtype=np.uint32)
            spans = np.array([per_query[start + row][1] - per_query[start + row][0]
                              for row in rows], dtype=np.uint32)
            # One pass over this column's codes for the whole chunk; the
            # unsigned subtraction folds ``low <= code <= high`` into a
            # single comparison (out-of-range wraps around to a huge value).
            satisfied = (codes[None, :] - lows[:, None]) <= spans[:, None]
            if mask is None:
                if rows.size == stop - start:
                    mask = satisfied
                else:
                    mask = np.ones((stop - start, table.num_rows), dtype=bool)
                    mask[rows] &= satisfied
            elif rows.size == stop - start:
                mask &= satisfied
            else:
                mask[rows] &= satisfied
        if mask is not None:
            counts[start:stop] = mask.sum(axis=1)
    counts[unsatisfiable] = 0
    return counts


def true_cardinalities_delta(delta: TableDelta, queries: Sequence[Query],
                             base_counts: np.ndarray,
                             chunk_size: int = 32) -> np.ndarray:
    """Relabel a workload after a mutation by scanning only the changed rows.

    ``base_counts`` must be the exact counts of ``queries`` on the delta's
    base snapshot (``true_cardinalities(base_snapshot, queries)``).  The new
    live view is ``(base \\ removed) ∪ appended`` with the three sets
    pairwise disjoint, counts are additive over disjoint row sets, and
    predicates compare *raw* values (dictionary growth re-codes rows but
    never changes which rows satisfy a predicate) — so labeling the appended
    rows and the removed rows with the same vectorised kernel and computing
    ``base + appended - removed`` matches a full rescan of the new live view
    bit-for-bit, at the cost of scanning only the churned rows.

    The one case that breaks value semantics is a dtype *promotion* (e.g. a
    numeric column turned into strings by a later append): string comparison
    orders differently, so base counts are no longer reusable and this
    function refuses with a :class:`ValueError`.
    """
    queries = list(queries)
    base_counts = np.asarray(base_counts, dtype=np.int64)
    if base_counts.shape != (len(queries),):
        raise ValueError(
            f"base_counts has shape {base_counts.shape} but {len(queries)} "
            f"queries were given")
    if delta.promoted_columns:
        raise ValueError(
            f"columns {list(delta.promoted_columns)} changed dtype between the "
            f"base and new snapshots; base counts are not reusable — relabel "
            f"with true_cardinalities on the new snapshot")
    counts = base_counts.copy()
    if delta.appended_rows:
        counts += true_cardinalities(delta.appended, queries,
                                     chunk_size=chunk_size)
    if delta.removed_rows:
        counts -= true_cardinalities(delta.removed, queries,
                                     chunk_size=chunk_size)
    return counts


def _interval_index(table: Table, queries: Sequence[Query]
                    ) -> tuple[dict[int, dict[int, tuple[int, int]]], np.ndarray]:
    """Regroup each query's :meth:`Query.code_intervals` by column.

    Returns ``(intervals, unsatisfiable)`` where ``intervals[column][query]``
    is the inclusive code interval query ``query`` places on ``column``
    (full-domain intervals are dropped) and ``unsatisfiable`` flags queries
    whose interval on some column is empty (cardinality 0 by construction).
    """
    intervals: dict[int, dict[int, tuple[int, int]]] = {}
    unsatisfiable = np.zeros(len(queries), dtype=bool)
    for query_index, query in enumerate(queries):
        query.validate(table)
        for column_index, (low, high) in query.code_intervals(table).items():
            if low > high:
                unsatisfiable[query_index] = True
            else:
                intervals.setdefault(column_index, {})[query_index] = (low, high)
    return intervals, unsatisfiable
