"""Exact ground-truth query execution.

Every experiment needs true cardinalities as labels (for training the
query-driven and hybrid methods) and as the reference of the Q-Error metric.
This executor computes them exactly with vectorised NumPy scans over the
dictionary-encoded code matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.table import Table
from .query import Query

__all__ = ["execute", "cardinality", "selectivity", "true_cardinalities"]


def execute(table: Table, query: Query) -> np.ndarray:
    """Return the boolean row mask of tuples satisfying ``query``."""
    query.validate(table)
    mask = np.ones(table.num_rows, dtype=bool)
    for predicate in query.predicates:
        column = table.column(predicate.column)
        mask &= predicate.evaluate_codes(column, column.codes)
        if not mask.any():
            break
    return mask


def cardinality(table: Table, query: Query) -> int:
    """Exact number of tuples satisfying ``query``."""
    return int(execute(table, query).sum())


def selectivity(table: Table, query: Query) -> float:
    """Exact selectivity ``cardinality / num_rows``."""
    return cardinality(table, query) / max(table.num_rows, 1)


def true_cardinalities(table: Table, queries: Sequence[Query]) -> np.ndarray:
    """Exact cardinalities of a batch of queries."""
    return np.array([cardinality(table, query) for query in queries], dtype=np.int64)
