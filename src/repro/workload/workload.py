"""Workload container: a named list of queries with optional true labels."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..data.table import Table
from . import executor
from .predicates import Operator, Predicate
from .query import Query

__all__ = ["Workload"]


@dataclass
class Workload:
    """A list of queries plus (optionally) their true cardinalities."""

    name: str
    queries: list[Query]
    cardinalities: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.cardinalities is not None:
            self.cardinalities = np.asarray(self.cardinalities, dtype=np.int64)
            if len(self.cardinalities) != len(self.queries):
                raise ValueError("cardinalities and queries must have the same length")

    # ------------------------------------------------------------------
    def label(self, table: Table) -> "Workload":
        """Compute and attach exact cardinalities (in place), return self."""
        self.cardinalities = executor.true_cardinalities(table, self.queries)
        return self

    @property
    def is_labeled(self) -> bool:
        return self.cardinalities is not None

    def selectivities(self, table: Table) -> np.ndarray:
        """True selectivities; labels are computed on demand if missing."""
        if not self.is_labeled:
            self.label(table)
        return self.cardinalities / max(table.num_rows, 1)

    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int], name: str | None = None) -> "Workload":
        """Return a new workload with the given query indices."""
        queries = [self.queries[index] for index in indices]
        cards = None
        if self.cardinalities is not None:
            cards = self.cardinalities[np.asarray(indices, dtype=np.int64)]
        return Workload(name or f"{self.name}_subset", queries, cards)

    def batches(self, batch_size: int) -> Iterator["Workload"]:
        """Yield consecutive batches (used by hybrid training)."""
        for start in range(0, len(self.queries), batch_size):
            yield self.subset(range(start, min(start + batch_size, len(self.queries))))

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Serialise to JSON (queries as triples, labels if present)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": self.name,
            "queries": [
                [[predicate.column, predicate.operator.value, _jsonable(predicate.value)]
                 for predicate in query.predicates]
                for query in self.queries
            ],
            "cardinalities": (self.cardinalities.tolist()
                              if self.cardinalities is not None else None),
        }
        path.write_text(json.dumps(payload))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Workload":
        """Load a workload saved by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        queries = [
            Query(Predicate(column, Operator.from_string(op), value)
                  for column, op, value in triples)
            for triples in payload["queries"]
        ]
        cards = payload.get("cardinalities")
        return cls(payload["name"], queries,
                   np.asarray(cards, dtype=np.int64) if cards is not None else None)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value
