"""Workload generation following the paper's protocol (§V-A2).

Queries are *tuple-anchored*: a tuple is sampled from the table and each
predicate is generated so that the sampled tuple satisfies it (operator
chosen at random, literal taken from the tuple).  This is the protocol used
by Naru and the "Are We Ready For Learned Cardinality Estimation?" benchmark
and yields a wide range of selectivities.

Two workload flavours are produced:

* **Rand-Q** ("random queries"): the number of predicates is uniform over
  ``[1, num_columns]`` and values are unrestricted — the worst case where
  incoming queries are unrelated to anything seen in training.
* **In-Q / training workloads** ("in-workload queries"): one large column is
  *bounded* (predicate literals for it are drawn from a fixed 1% sample of
  its distinct values) and the number of predicates follows a gamma
  distribution, simulating the locality and skew of production workloads.

A multi-predicate generator (two-sided ranges on a column) is provided for
the MPSN experiments (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Table
from .predicates import Operator, Predicate
from .query import Query
from .workload import Workload

__all__ = [
    "WorkloadConfig",
    "WorkloadGenerator",
    "make_random_workload",
    "make_inworkload",
    "make_multi_predicate_workload",
]

_SINGLE_SIDED_OPERATORS = [Operator.EQ, Operator.GE, Operator.LE, Operator.GT, Operator.LT]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the workload generator."""

    num_queries: int = 2_000
    seed: int = 1234
    bounded_column: bool = False
    bounded_fraction: float = 0.01
    gamma_shape: float = 2.0
    gamma_scale: float = 1.5
    min_predicates: int = 1
    max_predicates: int | None = None
    operators: tuple[Operator, ...] = tuple(_SINGLE_SIDED_OPERATORS)
    max_predicates_per_column: int = 1


class WorkloadGenerator:
    """Tuple-anchored workload generator for one table."""

    def __init__(self, table: Table, config: WorkloadConfig) -> None:
        self.table = table
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._codes = table.code_matrix()
        self._bounded_column_index: int | None = None
        self._bounded_values: np.ndarray | None = None
        if config.bounded_column:
            self._choose_bounded_column()

    # ------------------------------------------------------------------
    def _choose_bounded_column(self) -> None:
        """Pick a large-NDV column and freeze 1% of its distinct values.

        Mirrors the paper: "We randomly choose a large enough column and
        sample 1% of its distinct values as a bounded column, so the model
        will only be trained on limited predicates."
        """
        ndvs = np.array(self.table.cardinalities)
        candidates = np.argsort(ndvs)[::-1]
        self._bounded_column_index = int(candidates[0])
        column = self.table.column(self._bounded_column_index)
        count = max(1, int(np.ceil(column.num_distinct * self.config.bounded_fraction)))
        self._bounded_values = self._rng.choice(column.num_distinct, size=count, replace=False)

    # ------------------------------------------------------------------
    def _num_predicates(self) -> int:
        maximum = self.config.max_predicates or self.table.num_columns
        maximum = min(maximum, self.table.num_columns)
        minimum = min(self.config.min_predicates, maximum)
        if self.config.bounded_column:
            # Gamma-distributed count simulates the skew of real workloads.
            drawn = 1 + int(self._rng.gamma(self.config.gamma_shape, self.config.gamma_scale))
            return int(np.clip(drawn, minimum, maximum))
        return int(self._rng.integers(minimum, maximum + 1))

    def _anchor_row(self) -> np.ndarray:
        row_index = int(self._rng.integers(0, self.table.num_rows))
        return self._codes[row_index]

    def _predicate_for(self, column_index: int, anchor_code: int) -> Predicate:
        """One predicate that the anchor tuple satisfies.

        For ``=``, ``>=``, ``<=`` the anchor's own value is the literal.  For
        the strict operators the literal is drawn from the codes strictly
        below (``>``) or above (``<``) the anchor so the anchor still
        qualifies; when no such code exists the operator degrades to its
        non-strict counterpart, mirroring Algorithm 1's bound handling.
        """
        column = self.table.column(column_index)
        operator = self.config.operators[self._rng.integers(0, len(self.config.operators))]
        code = anchor_code
        if (self._bounded_column_index == column_index
                and self._bounded_values is not None):
            # Bounded column: the literal must come from the frozen 1% value
            # sample, whatever the operator (the anchor may then not match).
            code = int(self._rng.choice(self._bounded_values))
            return Predicate(column.name, operator, column.value_of(code))
        if operator is Operator.GT:
            if code == 0:
                operator = Operator.GE
            else:
                code = int(self._rng.integers(0, code))
        elif operator is Operator.LT:
            if code == column.num_distinct - 1:
                operator = Operator.LE
            else:
                code = int(self._rng.integers(code + 1, column.num_distinct))
        value = column.value_of(code)
        return Predicate(column.name, operator, value)

    def generate_query(self, num_predicates: int | None = None) -> Query:
        """Generate one query anchored on a random tuple."""
        anchor = self._anchor_row()
        count = num_predicates if num_predicates is not None else self._num_predicates()
        count = int(np.clip(count, 1, self.table.num_columns))
        column_indices = self._rng.choice(self.table.num_columns, size=count, replace=False)
        predicates = []
        for column_index in sorted(column_indices):
            predicates.extend(self._column_predicates(int(column_index),
                                                      int(anchor[column_index])))
        return Query(predicates)

    def _column_predicates(self, column_index: int, anchor_code: int) -> list[Predicate]:
        """One or several predicates on a single column.

        With ``max_predicates_per_column > 1`` a two-sided range around the
        anchor value may be emitted, which is the workload the MPSN
        experiments need.
        """
        column = self.table.column(column_index)
        how_many = 1
        if self.config.max_predicates_per_column > 1:
            how_many = int(self._rng.integers(1, self.config.max_predicates_per_column + 1))
        if how_many == 1:
            return [self._predicate_for(column_index, anchor_code)]
        low_code = int(self._rng.integers(0, anchor_code + 1))
        high_code = int(self._rng.integers(anchor_code, column.num_distinct))
        return [
            Predicate(column.name, Operator.GE, column.value_of(low_code)),
            Predicate(column.name, Operator.LE, column.value_of(high_code)),
        ]

    # ------------------------------------------------------------------
    def generate(self, name: str, label: bool = True) -> Workload:
        """Generate the configured number of queries as a :class:`Workload`."""
        queries = [self.generate_query() for _ in range(self.config.num_queries)]
        workload = Workload(name, queries)
        if label:
            workload.label(self.table)
        return workload


# ----------------------------------------------------------------------
# Convenience constructors mirroring the paper's three workloads
# ----------------------------------------------------------------------

def make_random_workload(table: Table, num_queries: int = 2_000, seed: int = 1234,
                         max_predicates: int | None = None, label: bool = True) -> Workload:
    """The paper's Rand-Q testing workload (seed 1234, uniform predicate count)."""
    config = WorkloadConfig(num_queries=num_queries, seed=seed, bounded_column=False,
                            max_predicates=max_predicates)
    return WorkloadGenerator(table, config).generate(f"{table.name}-rand-q", label=label)


def make_inworkload(table: Table, num_queries: int = 2_000, seed: int = 42,
                    max_predicates: int | None = None, label: bool = True) -> Workload:
    """The paper's training / In-Q workload (seed 42, bounded column, gamma counts)."""
    config = WorkloadConfig(num_queries=num_queries, seed=seed, bounded_column=True,
                            max_predicates=max_predicates)
    return WorkloadGenerator(table, config).generate(f"{table.name}-in-q", label=label)


def make_multi_predicate_workload(table: Table, num_queries: int = 500, seed: int = 7,
                                  max_predicates_per_column: int = 2,
                                  label: bool = True) -> Workload:
    """Workload with up to two predicates per column (MPSN evaluation, Table I)."""
    config = WorkloadConfig(num_queries=num_queries, seed=seed, bounded_column=False,
                            max_predicates_per_column=max_predicates_per_column)
    return WorkloadGenerator(table, config).generate(f"{table.name}-multi-pred", label=label)
