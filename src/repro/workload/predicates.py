"""Predicate model: operators, single predicates, and code-space translation.

A predicate constrains one column with one operator from
``{=, >, <, >=, <=}`` and one literal value (the paper's §III definition).
Estimators work in dictionary-code space, so this module also provides the
translation from a raw-value predicate to (a) a boolean mask over a column's
distinct values and (b) an inclusive code interval — the two forms used by
Duet's zero-out mask, Naru's progressive sampling, and the ground-truth
executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..data.column import Column

__all__ = ["Operator", "Predicate"]


class Operator(str, Enum):
    """Supported predicate operators."""

    EQ = "="
    GT = ">"
    LT = "<"
    GE = ">="
    LE = "<="

    @classmethod
    def from_string(cls, text: str) -> "Operator":
        for operator in cls:
            if operator.value == text:
                return operator
        raise ValueError(f"unknown operator {text!r}")

    @property
    def index(self) -> int:
        """Stable integer id used by one-hot encodings (paper's numbering)."""
        return _OPERATOR_ORDER.index(self)


_OPERATOR_ORDER = [Operator.EQ, Operator.GT, Operator.LT, Operator.GE, Operator.LE]


@dataclass(frozen=True)
class Predicate:
    """A single predicate ``column <op> value`` on raw values."""

    column: str
    operator: Operator
    value: object

    def __post_init__(self) -> None:
        if not isinstance(self.operator, Operator):
            object.__setattr__(self, "operator", Operator.from_string(str(self.operator)))
        # Normalise NumPy scalars to plain Python values so that predicates
        # serialise cleanly and compare equal after a save/load roundtrip.
        if isinstance(self.value, np.generic):
            object.__setattr__(self, "value", self.value.item())

    # ------------------------------------------------------------------
    def code_interval(self, column: Column) -> tuple[int, int]:
        """Translate to an inclusive code interval ``[low, high]``.

        An empty interval is returned as ``(1, 0)`` (low > high).  The code
        interval form exists because dictionary codes are assigned in value
        order, so every operator maps to one contiguous interval.
        """
        left = column.searchsorted(self.value, side="left")
        right = column.searchsorted(self.value, side="right")
        last = column.num_distinct - 1
        if self.operator is Operator.EQ:
            if left == right:  # value not present in the domain
                return (1, 0)
            return (left, right - 1)
        if self.operator is Operator.GT:
            return (right, last)
        if self.operator is Operator.GE:
            return (left, last)
        if self.operator is Operator.LT:
            return (0, left - 1)
        if self.operator is Operator.LE:
            return (0, right - 1)
        raise AssertionError(f"unhandled operator {self.operator}")

    def valid_value_mask(self, column: Column) -> np.ndarray:
        """Boolean mask over the column's distinct values (length = NDV).

        This is ``Pred_i(R_i, v_i)`` from the paper: 1 for distinct values
        that satisfy the predicate, 0 otherwise.
        """
        low, high = self.code_interval(column)
        mask = np.zeros(column.num_distinct, dtype=bool)
        if low <= high:
            mask[low:high + 1] = True
        return mask

    def evaluate_codes(self, column: Column, codes: np.ndarray) -> np.ndarray:
        """Boolean mask over ``codes`` (rows) that satisfy this predicate."""
        low, high = self.code_interval(column)
        if low > high:
            return np.zeros(codes.shape, dtype=bool)
        return (codes >= low) & (codes <= high)

    def __str__(self) -> str:
        return f"{self.column} {self.operator.value} {self.value!r}"
