"""Query and workload substrate: predicates, queries, ground truth, generators."""

from .executor import (
    cardinality,
    execute,
    selectivity,
    true_cardinalities,
    true_cardinalities_delta,
)
from .generator import (
    WorkloadConfig,
    WorkloadGenerator,
    make_inworkload,
    make_multi_predicate_workload,
    make_random_workload,
)
from .predicates import Operator, Predicate
from .query import Query
from .workload import Workload

__all__ = [
    "Operator",
    "Predicate",
    "Query",
    "Workload",
    "execute",
    "cardinality",
    "selectivity",
    "true_cardinalities",
    "true_cardinalities_delta",
    "WorkloadConfig",
    "WorkloadGenerator",
    "make_random_workload",
    "make_inworkload",
    "make_multi_predicate_workload",
]
