"""Query model: a conjunction of predicates over one table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..data.table import Table
from .predicates import Operator, Predicate

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A conjunctive selection query.

    Multiple predicates on the same column are allowed (e.g.
    ``age >= 20 AND age <= 30``); that is the case Duet's MPSN component
    (§IV-F of the paper) exists to handle.
    """

    predicates: tuple[Predicate, ...]

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        object.__setattr__(self, "predicates", tuple(predicates))

    # ------------------------------------------------------------------
    @classmethod
    def from_triples(cls, triples: Sequence[tuple[str, str, object]]) -> "Query":
        """Build a query from ``(column, operator, value)`` triples."""
        return cls(Predicate(column, Operator.from_string(op), value)
                   for column, op, value in triples)

    # ------------------------------------------------------------------
    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    @property
    def columns(self) -> list[str]:
        """Names of the constrained columns, in predicate order, deduplicated."""
        seen: list[str] = []
        for predicate in self.predicates:
            if predicate.column not in seen:
                seen.append(predicate.column)
        return seen

    def predicates_on(self, column: str) -> list[Predicate]:
        """All predicates constraining ``column``."""
        return [predicate for predicate in self.predicates if predicate.column == column]

    def max_predicates_per_column(self) -> int:
        if not self.predicates:
            return 0
        return max(len(self.predicates_on(column)) for column in self.columns)

    # ------------------------------------------------------------------
    def validate(self, table: Table) -> None:
        """Raise if the query references columns the table does not have."""
        known = set(table.column_names)
        unknown = [predicate.column for predicate in self.predicates
                   if predicate.column not in known]
        if unknown:
            raise KeyError(f"query references unknown columns {sorted(set(unknown))} "
                           f"of table {table.name!r}")
        if not self.predicates:
            raise ValueError("a query must contain at least one predicate")

    def __str__(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(str(predicate) for predicate in self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)
