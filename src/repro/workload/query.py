"""Query model: a conjunction of predicates over one table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..data.table import Table
from .predicates import Operator, Predicate

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A conjunctive selection query.

    Multiple predicates on the same column are allowed (e.g.
    ``age >= 20 AND age <= 30``); that is the case Duet's MPSN component
    (§IV-F of the paper) exists to handle.
    """

    predicates: tuple[Predicate, ...]

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        object.__setattr__(self, "predicates", tuple(predicates))

    # ------------------------------------------------------------------
    @classmethod
    def from_triples(cls, triples: Sequence[tuple[str, str, object]]) -> "Query":
        """Build a query from ``(column, operator, value)`` triples."""
        return cls(Predicate(column, Operator.from_string(op), value)
                   for column, op, value in triples)

    # ------------------------------------------------------------------
    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    @property
    def columns(self) -> list[str]:
        """Names of the constrained columns, in predicate order, deduplicated."""
        seen: list[str] = []
        for predicate in self.predicates:
            if predicate.column not in seen:
                seen.append(predicate.column)
        return seen

    def predicates_on(self, column: str) -> list[Predicate]:
        """All predicates constraining ``column``."""
        return [predicate for predicate in self.predicates if predicate.column == column]

    def max_predicates_per_column(self) -> int:
        if not self.predicates:
            return 0
        return max(len(self.predicates_on(column)) for column in self.columns)

    def code_intervals(self, table: Table) -> dict[int, tuple[int, int]]:
        """This query as one inclusive code interval per constrained column.

        Conjunctions of interval predicates stay intervals, so all predicates
        on one column intersect into a single ``(low, high)`` pair.  Intervals
        covering a column's whole domain are dropped (the predicate does not
        constrain anything); an unsatisfiable intersection is normalised to
        the canonical empty interval ``(1, 0)``.  This is the semantic form
        shared by the ground-truth executor and the serving cache key: two
        queries with equal interval maps select exactly the same tuples.
        """
        intervals: dict[int, tuple[int, int]] = {}
        for predicate in self.predicates:
            column_index = table.column_index(predicate.column)
            column = table.column(column_index)
            low, high = predicate.code_interval(column)
            previous = intervals.get(column_index)
            if previous is not None:
                low, high = max(previous[0], low), min(previous[1], high)
            if low > high:
                low, high = 1, 0
            intervals[column_index] = (low, high)
        return {
            column_index: (low, high)
            for column_index, (low, high) in intervals.items()
            if not (low == 0 and high == table.column(column_index).num_distinct - 1)
        }

    # ------------------------------------------------------------------
    def validate(self, table: Table) -> None:
        """Raise if the query references columns the table does not have."""
        known = set(table.column_names)
        unknown = [predicate.column for predicate in self.predicates
                   if predicate.column not in known]
        if unknown:
            raise KeyError(f"query references unknown columns {sorted(set(unknown))} "
                           f"of table {table.name!r}")
        if not self.predicates:
            raise ValueError("a query must contain at least one predicate")

    def __str__(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(str(predicate) for predicate in self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)
