"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable installs
work in fully offline environments whose setuptools lacks PEP 660 support
(``pip install -e .`` then falls back to the legacy ``setup.py develop``
path, which needs no network access and no ``wheel`` package).
"""

from setuptools import setup

setup()
